package route

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// testFabric builds n LLC links and returns the near-side ports plus a
// counter map recording deliveries per far-side port index.
func testFabric(k *sim.Kernel, n int) ([]*llc.Port, []*int) {
	near := make([]*llc.Port, n)
	counts := make([]*int, n)
	for i := 0; i < n; i++ {
		link := phy.NewLink(k, "l", phy.LanesPerChannel, 50*sim.Nanosecond, phy.FaultConfig{})
		a, b := llc.NewPair(k, "p", link, llc.DefaultConfig())
		c := new(int)
		b.OnReceive = func(*capi.Transaction) { *c++ }
		near[i] = a
		counts[i] = c
	}
	return near, counts
}

func txn(id uint16, bonded bool, tag uint32) *capi.Transaction {
	return &capi.Transaction{Op: capi.OpReadReq, Addr: 0x100, Size: 128,
		Tag: tag, NetworkID: id, Bonded: bonded}
}

func TestForwardUnknownFlowDropped(t *testing.T) {
	r := NewRouter("r")
	if err := r.Forward(txn(9, false, 1)); err == nil {
		t.Fatal("unknown flow forwarded")
	}
	if _, dropped := r.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestForwardSingleChannel(t *testing.T) {
	k := sim.NewKernel()
	ports, counts := testFabric(k, 1)
	r := NewRouter("r")
	if err := r.AddFlow(1, ports[0]); err != nil {
		t.Fatal(err)
	}
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := r.Forward(txn(1, false, uint32(i))); err != nil {
				t.Error(err)
			}
		}
	})
	k.RunUntil(sim.Millisecond)
	if *counts[0] != 20 {
		t.Fatalf("delivered %d, want 20", *counts[0])
	}
}

func TestBondingRoundRobin(t *testing.T) {
	k := sim.NewKernel()
	ports, counts := testFabric(k, 2)
	r := NewRouter("r")
	if err := r.AddFlow(1, ports[0], ports[1]); err != nil {
		t.Fatal(err)
	}
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if err := r.Forward(txn(1, true, uint32(i))); err != nil {
				t.Error(err)
			}
		}
	})
	k.RunUntil(sim.Millisecond)
	if *counts[0] != 20 || *counts[1] != 20 {
		t.Fatalf("bonded split = %d/%d, want 20/20", *counts[0], *counts[1])
	}
}

func TestUnbondedStaysOnFirstChannel(t *testing.T) {
	k := sim.NewKernel()
	ports, counts := testFabric(k, 2)
	r := NewRouter("r")
	if err := r.AddFlow(1, ports[0], ports[1]); err != nil {
		t.Fatal(err)
	}
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			_ = r.Forward(txn(1, false, uint32(i)))
		}
	})
	k.RunUntil(sim.Millisecond)
	if *counts[0] != 10 || *counts[1] != 0 {
		t.Fatalf("unbonded split = %d/%d, want 10/0", *counts[0], *counts[1])
	}
}

func TestChannelSharingAcrossFlows(t *testing.T) {
	// Two flows share channel 0; one of them bonds over both channels —
	// exactly the sharing the paper allows (Section IV-A3).
	k := sim.NewKernel()
	ports, counts := testFabric(k, 2)
	r := NewRouter("r")
	if err := r.AddFlow(1, ports[0], ports[1]); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFlow(2, ports[0]); err != nil {
		t.Fatal(err)
	}
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			_ = r.Forward(txn(1, true, uint32(i)))
			_ = r.Forward(txn(2, false, uint32(100+i)))
		}
	})
	k.RunUntil(sim.Millisecond)
	if *counts[0] != 45 || *counts[1] != 15 {
		t.Fatalf("shared split = %d/%d, want 45/15", *counts[0], *counts[1])
	}
	if r.FlowSent(1) != 30 || r.FlowSent(2) != 30 {
		t.Fatalf("per-flow counts %d/%d", r.FlowSent(1), r.FlowSent(2))
	}
}

func TestAddRemoveFlow(t *testing.T) {
	k := sim.NewKernel()
	ports, _ := testFabric(k, 1)
	r := NewRouter("r")
	if err := r.AddFlow(1, ports[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFlow(1, ports[0]); err == nil {
		t.Fatal("duplicate AddFlow accepted")
	}
	if got := r.Flows(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("flows = %v", got)
	}
	if err := r.RemoveFlow(1); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveFlow(1); err == nil {
		t.Fatal("double RemoveFlow accepted")
	}
	if err := r.AddFlow(2); err == nil {
		t.Fatal("flow with no channels accepted")
	}
}
