// Package latency is the per-transaction latency-attribution pipeline: it
// decomposes the round trip of every CAPI transaction into the stages of the
// ThymesisFlow datapath, reconstructing the paper's Section V latency budget
// (a ~950 ns flit RTT made of four FPGA-stack crossings and six serDES
// crossings) as a live, per-stage measurement instead of a single end-to-end
// number.
//
// A transaction that is being attributed carries a compact *Record in its
// header (capi.Transaction.Lat). Each layer the transaction crosses stamps
// its stage in virtual time:
//
//	compute endpoint  issue / translate / capi_cross / complete
//	llc port          credit_stall / llc_queue / ret_queue
//	llc rx + phy      frame_tx / phy_flight / ret_tx / ret_flight
//	memory endpoint   c1_ingress / c1_service / c1_egress
//
// Stamping follows the same nil-check discipline as internal/trace: every
// site guards with `if t.Lat != nil`, so the disabled path costs one pointer
// compare and zero allocations (the sim kernel benchmark stays at its
// BENCH_PR1.json allocation budget). When enabled, records are allocated per
// transaction and folded into per-stage histograms on completion.
//
// Stages tile the round trip exactly: a Record advances an internal mark on
// every stamp, so the sum of stage durations equals the end-to-end latency
// picosecond for picosecond. The Sink counts any record violating this as
// skewed — a reconciliation failure surfaced in every Breakdown.
package latency

import (
	"sort"
	"sync"

	"thymesisflow/internal/metrics"
)

// Stage identifies one segment of a transaction's round trip. The stages
// partition the timeline in order; stages a transaction does not experience
// (a credit stall on an uncontended link, queueing on an idle C1 master)
// contribute zero.
type Stage uint8

// The datapath stages, in round-trip order.
const (
	// StageIssue: admission on the compute host — QoS arbitration and tag
	// assignment before translation. Zero in the uncontended model.
	StageIssue Stage = iota
	// StageTranslate: the RMMU section-table lookup. Combinational in the
	// prototype FPGA (its cost is part of the stack crossing), so zero
	// virtual time here; faults abort the record instead.
	StageTranslate
	// StageCapiCross: the compute-side OpenCAPI ingress — one FPGA-stack
	// crossing plus one serDES crossing (endpoint.SideLatency).
	StageCapiCross
	// StageCreditStall: LLC Tx backpressure — the issuing process blocked
	// waiting for receiver credits.
	StageCreditStall
	// StageLLCQueue: time in the LLC pending queue until the transaction is
	// packed into a frame (head-of-line waits, flush batching).
	StageLLCQueue
	// StageFrameTx: request frame time on the wire minus the flight
	// crossing — serialization, queueing behind earlier frames, and any
	// replay delay repairing a lost or corrupted frame.
	StageFrameTx
	// StagePhyFlight: the request's serDES flight crossing.
	StagePhyFlight
	// StageC1Ingress: the donor-side attachment ingress crossing.
	StageC1Ingress
	// StageC1Service: the C1 master's service time — bandwidth-ceiling
	// queueing plus donor DRAM.
	StageC1Service
	// StageC1Egress: the donor-side attachment egress crossing.
	StageC1Egress
	// StageRetQueue: the response's LLC pending-queue wait at the donor.
	StageRetQueue
	// StageRetTx: the response frame's wire time minus flight
	// (serialization, queueing, replay).
	StageRetTx
	// StageRetFlight: the response's serDES flight crossing.
	StageRetFlight
	// StageComplete: the compute-side egress crossing and completion
	// wake-up delivering the response to the CPU.
	StageComplete

	// NumStages is the number of attribution stages.
	NumStages = int(StageComplete) + 1
)

var stageNames = [NumStages]string{
	"issue", "translate", "capi_cross", "credit_stall", "llc_queue",
	"frame_tx", "phy_flight", "c1_ingress", "c1_service", "c1_egress",
	"ret_queue", "ret_tx", "ret_flight", "complete",
}

// String returns the stage's snake_case name (used in metrics, JSON, and
// Prometheus series).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "stage(?)"
}

// Stages lists every stage in round-trip order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// crossing marks the stages that are fixed attachment-hardware or wire
// crossings: summed, they reconstruct the paper's flit RTT (4 FPGA-stack
// crossings in StageCapiCross, StageC1Ingress, StageC1Egress, StageComplete;
// 6 serDES crossings split across those four plus the two flight stages).
var crossing = [NumStages]bool{
	StageCapiCross: true, StagePhyFlight: true, StageC1Ingress: true,
	StageC1Egress: true, StageRetFlight: true, StageComplete: true,
}

// IsCrossing reports whether the stage is part of the flit-RTT crossing
// budget.
func (s Stage) IsCrossing() bool { return int(s) < NumStages && crossing[s] }

// Record is the per-transaction stage accounting a transaction under
// attribution carries through the stack. All times are virtual picoseconds.
// A Record belongs to one simulation kernel and must not be shared.
type Record struct {
	// Flow is the transaction's network identifier, stamped after RMMU
	// translation; the Sink aggregates per flow (per attachment).
	Flow uint16

	start int64
	mark  int64
	end   int64
	durs  [NumStages]int64
}

// NewRecord starts a record at the given virtual time. Most callers obtain
// records through Sink.Start instead.
func NewRecord(nowPS int64) *Record {
	return &Record{start: nowPS, mark: nowPS}
}

// MarkTo attributes the time since the previous stamp to stage and advances
// the mark to nowPS. Consecutive MarkTo calls therefore tile the timeline
// with no gaps or double counting.
func (r *Record) MarkTo(s Stage, nowPS int64) {
	if d := nowPS - r.mark; d > 0 {
		r.durs[s] += d
	}
	r.mark = nowPS
}

// Add attributes a known duration to stage and advances the mark by it —
// used when a layer schedules a composite delay up front (the memory
// endpoint's ingress + C1 service + egress) and the intermediate instants
// never occur as events.
func (r *Record) Add(s Stage, durPS int64) {
	if durPS <= 0 {
		return
	}
	r.durs[s] += durPS
	r.mark += durPS
}

// Wire splits the time since the previous stamp between a serialization
// stage and a flight stage: flightPS goes to flight (clamped to the elapsed
// time), the rest to tx. Called by the receiving LLC port, which knows the
// inbound crossing latency.
func (r *Record) Wire(tx, flight Stage, nowPS, flightPS int64) {
	elapsed := nowPS - r.mark
	if elapsed < 0 {
		elapsed = 0
	}
	if flightPS > elapsed {
		flightPS = elapsed
	}
	if flightPS < 0 {
		flightPS = 0
	}
	if d := elapsed - flightPS; d > 0 {
		r.durs[tx] += d
	}
	if flightPS > 0 {
		r.durs[flight] += flightPS
	}
	r.mark = nowPS
}

// finish closes the record at nowPS, attributing any residual to
// StageComplete, and reports whether the stage durations tile the round trip
// exactly.
func (r *Record) finish(nowPS int64) bool {
	r.MarkTo(StageComplete, nowPS)
	r.end = nowPS
	var sum int64
	for _, d := range r.durs {
		sum += d
	}
	return sum == r.end-r.start
}

// Duration returns the stage's accumulated duration in picoseconds.
func (r *Record) Duration(s Stage) int64 { return r.durs[s] }

// Elapsed returns end-to-end picoseconds for a finished record.
func (r *Record) Elapsed() int64 { return r.end - r.start }

// stageSet is one aggregation bucket: per-stage histograms plus the
// end-to-end distribution, all in nanoseconds.
type stageSet struct {
	total  *metrics.Histogram
	stages [NumStages]*metrics.Histogram
}

func newStageSet() *stageSet {
	ss := &stageSet{total: metrics.NewHistogram()}
	for i := range ss.stages {
		ss.stages[i] = metrics.NewHistogram()
	}
	return ss
}

func (ss *stageSet) observe(r *Record) {
	const ns = 1000.0 // picoseconds per nanosecond
	for i, d := range r.durs {
		ss.stages[i].Observe(float64(d) / ns)
	}
	ss.total.Observe(float64(r.end-r.start) / ns)
}

// Sink aggregates finished records into per-stage and per-flow histograms.
// It is safe for concurrent use: the simulation observes from its kernel
// goroutine while the control plane snapshots from HTTP handlers.
type Sink struct {
	mu      sync.Mutex
	overall *stageSet
	flows   map[uint16]*stageSet
	skewed  int64
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{overall: newStageSet(), flows: make(map[uint16]*stageSet)}
}

// Start begins attribution of one transaction at the given virtual time.
func (s *Sink) Start(nowPS int64) *Record { return NewRecord(nowPS) }

// Done closes the record at nowPS and folds it into the aggregates.
// Records of transactions that fault, are abandoned by a fenced link, or
// never complete are simply never passed to Done.
func (s *Sink) Done(r *Record, nowPS int64) {
	ok := r.finish(nowPS)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.skewed++
	}
	s.overall.observe(r)
	fs, exists := s.flows[r.Flow]
	if !exists {
		fs = newStageSet()
		s.flows[r.Flow] = fs
	}
	fs.observe(r)
}

// Count returns the number of completed records observed.
func (s *Sink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overall.total.Count()
}

// StageSummary quantifies one stage's contribution to the round trip. All
// values are nanoseconds of virtual time.
type StageSummary struct {
	Stage    string  `json:"stage"`
	Count    int64   `json:"count"`
	MeanNS   float64 `json:"mean_ns"`
	P50NS    float64 `json:"p50_ns"`
	P99NS    float64 `json:"p99_ns"`
	P999NS   float64 `json:"p999_ns"`
	MaxNS    float64 `json:"max_ns"`
	TotalNS  float64 `json:"total_ns"`
	SharePct float64 `json:"share_pct"` // of summed end-to-end time
}

// Breakdown is a point-in-time decomposition of the observed round trips.
type Breakdown struct {
	Count  int64          `json:"count"`
	Stages []StageSummary `json:"stages"`
	// EndToEnd summarizes the measured end-to-end distribution.
	EndToEnd StageSummary `json:"end_to_end"`
	// StageSumMeanNS is the sum of per-stage means; it reconciles with
	// EndToEnd.MeanNS when attribution tiles the round trip (ReconcileErrPct
	// reports the relative gap).
	StageSumMeanNS  float64 `json:"stage_sum_mean_ns"`
	ReconcileErrPct float64 `json:"reconcile_err_pct"`
	// CrossingsMeanNS sums the mean of the fixed crossing stages — the
	// measured counterpart of the paper's ~950 ns flit RTT budget.
	CrossingsMeanNS float64 `json:"crossings_mean_ns"`
	// Skewed counts records whose stage sum failed to tile the round trip
	// exactly (always 0 unless an instrumentation site is missing).
	Skewed int64 `json:"skewed"`
}

func summarize(name string, h *metrics.Histogram, totalNS float64) StageSummary {
	sum := h.Sum()
	var share float64
	if totalNS > 0 {
		share = 100 * sum / totalNS
	}
	return StageSummary{
		Stage:    name,
		Count:    h.Count(),
		MeanNS:   h.Mean(),
		P50NS:    h.Quantile(0.5),
		P99NS:    h.Quantile(0.99),
		P999NS:   h.Quantile(0.999),
		MaxNS:    h.Max(),
		TotalNS:  sum,
		SharePct: share,
	}
}

func (ss *stageSet) breakdown(skewed int64) Breakdown {
	b := Breakdown{Count: ss.total.Count(), Skewed: skewed}
	totalNS := ss.total.Sum()
	b.EndToEnd = summarize("end_to_end", ss.total, totalNS)
	for i, h := range ss.stages {
		sum := summarize(Stage(i).String(), h, totalNS)
		b.Stages = append(b.Stages, sum)
		b.StageSumMeanNS += sum.MeanNS
		if crossing[i] {
			b.CrossingsMeanNS += sum.MeanNS
		}
	}
	if b.EndToEnd.MeanNS > 0 {
		err := b.StageSumMeanNS - b.EndToEnd.MeanNS
		if err < 0 {
			err = -err
		}
		b.ReconcileErrPct = 100 * err / b.EndToEnd.MeanNS
	}
	return b
}

// Snapshot returns the overall breakdown across every flow.
func (s *Sink) Snapshot() Breakdown {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overall.breakdown(s.skewed)
}

// FlowSnapshot returns the breakdown of one flow (network identifier).
func (s *Sink) FlowSnapshot(flow uint16) (Breakdown, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.flows[flow]
	if !ok {
		return Breakdown{}, false
	}
	return fs.breakdown(0), true
}

// FlowIDs returns the flows observed so far in ascending order.
func (s *Sink) FlowIDs() []uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint16, 0, len(s.flows))
	for id := range s.flows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StageSummaryFor returns the named stage's overall summary — the adapter
// metrics.Registry histogram functions use.
func (s *Sink) StageSummaryFor(st Stage) metrics.HistogramSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return histogramSummary(s.overall.stages[st])
}

// EndToEndSummary returns the overall end-to-end summary.
func (s *Sink) EndToEndSummary() metrics.HistogramSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return histogramSummary(s.overall.total)
}

func histogramSummary(h *metrics.Histogram) metrics.HistogramSummary {
	return metrics.HistogramSummary{
		Count: h.Count(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P90: h.Quantile(0.9),
		P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		Max: h.Max(),
	}
}

// Register publishes the sink's distributions into a metrics registry as
// snapshot-time histogram functions: `<prefix>latency.rtt` plus one
// `<prefix>latency.stage.<name>` per stage. Values are nanoseconds.
func (s *Sink) Register(reg *metrics.Registry, prefix string) {
	reg.HistogramFunc(prefix+"latency.rtt", s.EndToEndSummary)
	for _, st := range Stages() {
		st := st
		reg.HistogramFunc(prefix+"latency.stage."+st.String(), func() metrics.HistogramSummary {
			return s.StageSummaryFor(st)
		})
	}
}
