package latency

import (
	"encoding/json"
	"testing"
)

func TestRecordTilesExactly(t *testing.T) {
	r := NewRecord(1000)
	r.MarkTo(StageTranslate, 1000) // zero-duration stage
	r.MarkTo(StageCapiCross, 1500)
	r.MarkTo(StageCreditStall, 1700)
	r.Add(StageC1Ingress, 300)
	r.Wire(StageFrameTx, StagePhyFlight, 2600, 250)
	if !r.finish(3000) {
		t.Fatalf("stage durations do not tile the round trip")
	}
	if got := r.Elapsed(); got != 2000 {
		t.Fatalf("Elapsed = %d, want 2000", got)
	}
	want := map[Stage]int64{
		StageCapiCross:   500,
		StageCreditStall: 200,
		StageC1Ingress:   300,
		StageFrameTx:     350, // wire gap 600 minus flight 250
		StagePhyFlight:   250,
		StageComplete:    400,
	}
	var sum int64
	for _, st := range Stages() {
		if d := r.Duration(st); d != want[st] {
			t.Errorf("stage %v = %d, want %d", st, d, want[st])
		}
		sum += r.Duration(st)
	}
	if sum != r.Elapsed() {
		t.Fatalf("stage sum %d != elapsed %d", sum, r.Elapsed())
	}
}

func TestWireClampsFlight(t *testing.T) {
	r := NewRecord(0)
	// Elapsed gap (100) smaller than the nominal flight (250): everything
	// lands in the flight stage, nothing goes negative.
	r.Wire(StageFrameTx, StagePhyFlight, 100, 250)
	if d := r.Duration(StageFrameTx); d != 0 {
		t.Fatalf("tx stage = %d, want 0", d)
	}
	if d := r.Duration(StagePhyFlight); d != 100 {
		t.Fatalf("flight stage = %d, want 100", d)
	}
	if !r.finish(100) {
		t.Fatalf("clamped wire stamp broke tiling")
	}
}

func TestMarkToIgnoresBackwardClock(t *testing.T) {
	r := NewRecord(1000)
	r.MarkTo(StageCapiCross, 900) // never happens in virtual time; must not underflow
	if d := r.Duration(StageCapiCross); d != 0 {
		t.Fatalf("negative elapsed charged %d", d)
	}
}

func TestSinkAggregatesPerFlow(t *testing.T) {
	s := NewSink()
	for i := 0; i < 10; i++ {
		r := s.Start(0)
		r.Flow = uint16(1 + i%2)
		r.MarkTo(StageCapiCross, 200)
		r.Add(StageC1Service, 300)
		s.Done(r, 1000)
	}
	b := s.Snapshot()
	if b.Count != 10 {
		t.Fatalf("Count = %d, want 10", b.Count)
	}
	if b.Skewed != 0 {
		t.Fatalf("Skewed = %d, want 0", b.Skewed)
	}
	if b.EndToEnd.MeanNS != 1.0 { // 1000 ps
		t.Fatalf("end-to-end mean = %v ns, want 1", b.EndToEnd.MeanNS)
	}
	if b.ReconcileErrPct > 1e-9 {
		t.Fatalf("reconcile error %v%% on exactly tiled records", b.ReconcileErrPct)
	}
	ids := s.FlowIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("FlowIDs = %v, want [1 2]", ids)
	}
	fb, ok := s.FlowSnapshot(1)
	if !ok || fb.Count != 5 {
		t.Fatalf("flow 1 snapshot = (%v, %v), want count 5", fb.Count, ok)
	}
	if _, ok := s.FlowSnapshot(99); ok {
		t.Fatalf("unknown flow reported a snapshot")
	}
}

func TestSinkCountsSkew(t *testing.T) {
	s := NewSink()
	r := s.Start(0)
	r.Add(StageC1Service, 5000) // more stage time than the round trip
	s.Done(r, 1000)
	if b := s.Snapshot(); b.Skewed != 1 {
		t.Fatalf("Skewed = %d, want 1", b.Skewed)
	}
}

func TestCrossingStagesSumToBudgetShape(t *testing.T) {
	// The six crossing stages are exactly the ones the paper's flit-RTT
	// budget enumerates: 4 stack crossings + 2 pure-flight serdes stages.
	want := map[Stage]bool{
		StageCapiCross: true, StagePhyFlight: true, StageC1Ingress: true,
		StageC1Egress: true, StageRetFlight: true, StageComplete: true,
	}
	for _, st := range Stages() {
		if st.IsCrossing() != want[st] {
			t.Errorf("stage %v crossing = %v, want %v", st, st.IsCrossing(), want[st])
		}
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	s := NewSink()
	r := s.Start(0)
	r.MarkTo(StageCapiCross, 212_500)
	s.Done(r, 212_500)
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var b Breakdown
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Count != 1 || len(b.Stages) != NumStages {
		t.Fatalf("round-tripped breakdown: count %d, %d stages", b.Count, len(b.Stages))
	}
}

func TestStageNamesStable(t *testing.T) {
	// Stage names are API: metrics series, Prometheus exposition, and JSON
	// payloads all embed them.
	want := []string{
		"issue", "translate", "capi_cross", "credit_stall", "llc_queue",
		"frame_tx", "phy_flight", "c1_ingress", "c1_service", "c1_egress",
		"ret_queue", "ret_tx", "ret_flight", "complete",
	}
	for i, st := range Stages() {
		if st.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.String(), want[i])
		}
	}
}
