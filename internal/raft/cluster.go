package raft

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// MemberStatus is one node's externally visible state, used by
// /v1/raft/status, tfctl raft, and the chaos report summaries. Field order
// and JSON tags are part of the deterministic report surface.
type MemberStatus struct {
	ID        string `json:"id"`
	Role      string `json:"role"`
	Term      uint64 `json:"term"`
	Commit    uint64 `json:"commit"`
	Applied   uint64 `json:"applied"`
	LastIndex uint64 `json:"last_index"`
	Leader    string `json:"leader,omitempty"`
	Stopped   bool   `json:"stopped,omitempty"`
}

// Cluster owns a set of Raft nodes and a virtual-time message network.
// Everything advances only through Tick, under one mutex, so a cluster
// driven by the same seed and the same call sequence reproduces
// byte-identically — the property every chaos scenario and crash-point
// test in this repo is built on. Messages sent during tick T are delivered
// at tick T+1 (one-tick link latency); partition cuts are evaluated at
// delivery time, so asymmetric cuts drop exactly the directed half.
type Cluster struct {
	mu    sync.Mutex
	ids   []string
	cfg   Config
	seed  int64
	nodes map[string]*node
	store map[string]Storage

	queue   []Message          // in flight, delivered next Tick
	cut     map[[2]string]bool // [from,to] directed partition cuts
	stopped map[string]bool
	dropped uint64 // messages discarded by cuts or stopped nodes
	now     uint64 // ticks elapsed

	lastLeader    string
	leaderChanges uint64
}

// NewCluster builds a cluster of len(ids) nodes with per-node storage from
// storageFn (nil means fresh MemStorage per node). Node RNGs derive from
// seed and the node ID, so two clusters with the same seed and IDs elect
// identically.
func NewCluster(ids []string, cfg Config, seed int64, storageFn func(id string) Storage) (*Cluster, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("raft: cluster needs at least one member")
	}
	cfg.defaults()
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	c := &Cluster{
		ids:     sorted,
		cfg:     cfg,
		seed:    seed,
		nodes:   make(map[string]*node, len(sorted)),
		store:   make(map[string]Storage, len(sorted)),
		cut:     make(map[[2]string]bool),
		stopped: make(map[string]bool),
	}
	for _, id := range sorted {
		var st Storage
		if storageFn != nil {
			st = storageFn(id)
		}
		if st == nil {
			st = NewMemStorage()
		}
		c.store[id] = st
		n, err := newNode(id, sorted, cfg, st, rand.New(rand.NewSource(nodeSeed(seed, id))))
		if err != nil {
			return nil, err
		}
		c.nodes[id] = n
	}
	return c, nil
}

func nodeSeed(seed int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return seed ^ int64(h.Sum64())
}

// send enqueues a message for next-tick delivery. Must hold c.mu.
func (c *Cluster) send(m Message) { c.queue = append(c.queue, m) }

// blocked reports whether the directed link from->to is cut. Must hold c.mu.
func (c *Cluster) blocked(from, to string) bool { return c.cut[[2]string{from, to}] }

// Tick advances virtual time one step: deliver last tick's messages in
// send order, then tick every running node in ID order.
func (c *Cluster) Tick() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickLocked()
}

// TickN runs n ticks.
func (c *Cluster) TickN(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := c.tickLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) tickLocked() error {
	inflight := c.queue
	c.queue = nil
	for _, m := range inflight {
		if c.stopped[m.To] || c.stopped[m.From] || c.blocked(m.From, m.To) {
			c.dropped++
			continue
		}
		if err := c.nodes[m.To].step(m, c.send); err != nil {
			return err
		}
	}
	for _, id := range c.ids {
		if c.stopped[id] {
			continue
		}
		if err := c.nodes[id].tick(c.send); err != nil {
			return err
		}
	}
	c.now++
	if cur, ok := c.leaderLocked(); ok && cur != c.lastLeader {
		if c.lastLeader != "" {
			c.leaderChanges++
		}
		c.lastLeader = cur
	}
	return nil
}

// leaderLocked returns the highest-term running leader, if any.
func (c *Cluster) leaderLocked() (string, bool) {
	var (
		best     string
		bestTerm uint64
	)
	for _, id := range c.ids {
		n := c.nodes[id]
		if c.stopped[id] || n.role != Leader {
			continue
		}
		if best == "" || n.term > bestTerm {
			best, bestTerm = id, n.term
		}
	}
	return best, best != ""
}

// Leader returns the current highest-term running leader, or "" if none.
func (c *Cluster) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, _ := c.leaderLocked()
	return id
}

// Propose submits data through node id. It returns the assigned log index
// and the proposing term, or *NotLeaderError (with hint) when id is not
// the leader. The entry is not yet committed — pump Tick until CommitIndex
// reaches the index, then confirm with TermAt that the entry at that index
// still carries the returned term: a deposed leader's proposal can be
// truncated and replaced by a new leader's entry at the same index, and
// the commit index alone cannot tell the two apart.
func (c *Cluster) Propose(id string, data []byte) (uint64, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return 0, 0, fmt.Errorf("raft: unknown member %q", id)
	}
	if c.stopped[id] {
		return 0, 0, fmt.Errorf("raft: member %q is stopped", id)
	}
	idx, err := n.propose(data, c.send)
	if err != nil {
		return 0, 0, err
	}
	return idx, n.term, nil
}

// TermAt returns the term of node id's log entry at index, or false when
// the node's log does not extend that far. Proposers pair it with the term
// returned by Propose to detect entries overwritten by a newer leader.
func (c *Cluster) TermAt(id string, index uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok || index == 0 || index > n.lastIndex() {
		return 0, false
	}
	return n.termAt(index), true
}

// Stop crashes a node: it stops ticking and all its traffic drops. Its
// storage is retained for Restart.
func (c *Cluster) Stop(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped[id] = true
	// lastLeader is intentionally NOT cleared: when a successor wins the
	// next election, that transition counts as a leader change, and a
	// restarted old leader winning again does not.
}

// Restart revives a stopped node from its persistent storage; volatile
// state (role, commit index, timers) is rebuilt by the protocol.
func (c *Cluster) Restart(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stopped[id] {
		return nil
	}
	n, err := newNode(id, c.ids, c.cfg, c.store[id], rand.New(rand.NewSource(nodeSeed(c.seed, id))))
	if err != nil {
		return err
	}
	c.nodes[id] = n
	delete(c.stopped, id)
	return nil
}

// Stopped reports whether id is currently crashed.
func (c *Cluster) Stopped(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped[id]
}

// Partition cuts the link between a and b in both directions.
func (c *Cluster) Partition(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[[2]string{a, b}] = true
	c.cut[[2]string{b, a}] = true
}

// PartitionOneWay cuts only messages flowing from -> to (asymmetric
// partition: `to` still reaches `from`).
func (c *Cluster) PartitionOneWay(from, to string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[[2]string{from, to}] = true
}

// Isolate cuts id off from every other member, both directions.
func (c *Cluster) Isolate(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.ids {
		if p == id {
			continue
		}
		c.cut[[2]string{id, p}] = true
		c.cut[[2]string{p, id}] = true
	}
}

// Heal removes cuts between a and b in both directions.
func (c *Cluster) Heal(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cut, [2]string{a, b})
	delete(c.cut, [2]string{b, a})
}

// HealAll removes every partition cut.
func (c *Cluster) HealAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut = make(map[[2]string]bool)
}

// CommitIndex returns node id's commit index.
func (c *Cluster) CommitIndex(id string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[id]; ok {
		return n.commit
	}
	return 0
}

// TakeCommitted returns the entries node id has newly committed since the
// previous TakeCommitted call (its applied cursor advances past them).
// This is the state-machine apply hook for ReplicatedJournal.Entries.
func (c *Cluster) TakeCommitted(id string) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok || n.applied >= n.commit {
		return nil
	}
	out := make([]Entry, n.commit-n.applied)
	copy(out, n.log[n.applied:n.commit])
	n.applied = n.commit
	return out
}

// Entries returns a copy of node id's committed log prefix, without
// moving its applied cursor.
func (c *Cluster) Entries(id string) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return nil
	}
	out := make([]Entry, n.commit)
	copy(out, n.log[:n.commit])
	return out
}

// Status returns node id's MemberStatus.
func (c *Cluster) Status(id string) MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(id)
}

func (c *Cluster) statusLocked(id string) MemberStatus {
	n, ok := c.nodes[id]
	if !ok {
		return MemberStatus{ID: id}
	}
	return MemberStatus{
		ID:        id,
		Role:      n.role.String(),
		Term:      n.term,
		Commit:    n.commit,
		Applied:   n.applied,
		LastIndex: n.lastIndex(),
		Leader:    n.leader,
		Stopped:   c.stopped[id],
	}
}

// Members returns every member's status in ID order.
func (c *Cluster) Members() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStatus, 0, len(c.ids))
	for _, id := range c.ids {
		out = append(out, c.statusLocked(id))
	}
	return out
}

// QuorumReachable reports whether id has a direct bidirectional link (no
// cut in either direction, peer running) to a majority of the cluster,
// itself included. A stopped node reaches no one.
//
// This is a direct-link heuristic, not true Raft reachability: commit
// quorum is counted at the leader, so a node whose only surviving link is
// to the leader can still replicate and learn commits even when this
// reports false (e.g. in a 5-node cluster, A cut off from C, D, and E but
// still linked to leader B reports quorum lost yet keeps committing).
// Treat a false here as "degraded, may still commit" — a readyz routing
// hint, not a fencing signal.
func (c *Cluster) QuorumReachable(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped[id] {
		return false
	}
	reach := 1
	for _, p := range c.ids {
		if p == id || c.stopped[p] {
			continue
		}
		if !c.blocked(id, p) && !c.blocked(p, id) {
			reach++
		}
	}
	return reach >= len(c.ids)/2+1
}

// LeaderChanges counts observed transitions to a different leader.
func (c *Cluster) LeaderChanges() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaderChanges
}

// DroppedMessages counts messages discarded by partitions/crashed nodes.
func (c *Cluster) DroppedMessages() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Now returns the number of elapsed virtual ticks.
func (c *Cluster) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// IDs returns the member IDs in sorted order.
func (c *Cluster) IDs() []string { return append([]string(nil), c.ids...) }
