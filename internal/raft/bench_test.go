package raft

import (
	"fmt"
	"testing"
)

// BenchmarkRaftQuorumAppend measures one quorum-committed append through a
// 3-node in-memory cluster: propose on the leader, pump ticks until the
// leader's commit index covers the entry. This is the replication cost the
// ReplicatedJournal adds on top of PR9's fsync group commit (5.6 µs/append
// at batch 64) — benchsnap.sh records it in the raft_append section.
func BenchmarkRaftQuorumAppend(b *testing.B) {
	c, err := NewCluster([]string{"cp-a", "cp-b", "cp-c"}, DefaultConfig(), 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 400 && c.Leader() == ""; i++ {
		if err := c.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	leader := c.Leader()
	if leader == "" {
		b.Fatal("no leader")
	}
	payload := []byte(`{"seq":1,"saga":"sg-000001","op":"attach","event":"step-done"}`)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx, _, err := c.Propose(leader, payload)
		if err != nil {
			b.Fatal(err)
		}
		for c.CommitIndex(leader) < idx {
			if err := c.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRaftQuorumAppend5 is the 5-node variant (two extra replicas on
// the quorum path).
func BenchmarkRaftQuorumAppend5(b *testing.B) {
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = fmt.Sprintf("cp-%c", 'a'+i)
	}
	c, err := NewCluster(ids, DefaultConfig(), 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 400 && c.Leader() == ""; i++ {
		if err := c.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	leader := c.Leader()
	if leader == "" {
		b.Fatal("no leader")
	}
	payload := []byte(`{"seq":1,"saga":"sg-000001","op":"attach","event":"step-done"}`)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx, _, err := c.Propose(leader, payload)
		if err != nil {
			b.Fatal(err)
		}
		for c.CommitIndex(leader) < idx {
			if err := c.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
