package raft

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFileStorageRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.jsonl")
	st, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(3, "cp-b"); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Index: 1, Term: 1, Data: []byte("one")},
		{Index: 2, Term: 2, Data: []byte("two")},
		{Index: 3, Term: 3},
	}
	if err := st.AppendEntries(entries); err != nil {
		t.Fatal(err)
	}
	if err := st.TruncateEntries(3); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]Entry{{Index: 3, Term: 3, Data: []byte("three'")}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	term, voted, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if term != 3 || voted != "cp-b" {
		t.Fatalf("state = (%d, %q), want (3, cp-b)", term, voted)
	}
	want := []Entry{entries[0], entries[1], {Index: 3, Term: 3, Data: []byte("three'")}}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %+v, want %+v", log, want)
	}
}

func TestFileStorageTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.jsonl")
	st, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(1, "cp-a"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]Entry{{Index: 1, Term: 1, Data: []byte("ok")}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"entry","entry":{"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer st2.Close()
	term, voted, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if term != 1 || voted != "cp-a" || len(log) != 1 || string(log[0].Data) != "ok" {
		t.Fatalf("recovered state wrong: term=%d voted=%q log=%+v", term, voted, log)
	}
	// The store must be appendable after recovery and the new record must
	// land on a clean line.
	if err := st2.AppendEntries([]Entry{{Index: 2, Term: 1, Data: []byte("post")}}); err != nil {
		t.Fatal(err)
	}
	_, _, log, err = st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || string(log[1].Data) != "post" {
		t.Fatalf("append after torn-tail recovery failed: %+v", log)
	}
}

func TestFileStorageGarbageLineStopsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raft.jsonl")
	st, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]Entry{{Index: 1, Term: 1, Data: []byte("keep")}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, _, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || string(log[0].Data) != "keep" {
		t.Fatalf("valid prefix wrong: %+v", log)
	}
}

func TestClusterWithFileStorageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	stores := map[string]*FileStorage{}
	mk := func(id string) Storage {
		st, err := OpenFileStorage(filepath.Join(dir, id+".raft"))
		if err != nil {
			t.Fatal(err)
		}
		stores[id] = st
		return st
	}
	c, err := NewCluster([]string{"cp-a", "cp-b", "cp-c"}, DefaultConfig(), 9, mk)
	if err != nil {
		t.Fatal(err)
	}
	leader := electLeader(t, c)
	for i := 0; i < 3; i++ {
		proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("f-%d", i)))
	}
	committed := c.Entries(leader)

	c.Stop(leader)
	next := electLeader(t, c)
	if err := c.Restart(leader); err != nil {
		t.Fatal(err)
	}
	proposeAndCommit(t, c, next, []byte("post"))
	for i := 0; i < 300 && c.CommitIndex(leader) < c.CommitIndex(next); i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Entries(leader)
	if len(got) <= len(committed) {
		t.Fatalf("restarted-from-disk node did not catch up: %d entries", len(got))
	}
	if !reflect.DeepEqual(got[:len(committed)], committed) {
		t.Fatalf("committed prefix lost across disk restart")
	}
	for _, st := range stores {
		st.Close()
	}
}
