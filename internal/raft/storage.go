package raft

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Storage persists a node's Raft state: current term, vote, and the log.
// Implementations must make SaveState/AppendEntries/TruncateEntries
// durable before returning — the protocol sends messages that promise the
// persisted state (§5.1). Load restores everything after a restart.
type Storage interface {
	SaveState(term uint64, votedFor string) error
	AppendEntries(entries []Entry) error
	TruncateEntries(from uint64) error // drop entries with Index >= from
	Load() (term uint64, votedFor string, entries []Entry, err error)
}

// MemStorage keeps Raft state in memory. It survives a node Restart inside
// a Cluster (the storage object is retained) but not process death; the
// deterministic tests and chaos scenarios use it, tfd uses FileStorage.
type MemStorage struct {
	term     uint64
	votedFor string
	log      []Entry
}

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage { return &MemStorage{} }

// SaveState implements Storage.
func (m *MemStorage) SaveState(term uint64, votedFor string) error {
	m.term, m.votedFor = term, votedFor
	return nil
}

// AppendEntries implements Storage.
func (m *MemStorage) AppendEntries(entries []Entry) error {
	m.log = append(m.log, entries...)
	return nil
}

// TruncateEntries implements Storage.
func (m *MemStorage) TruncateEntries(from uint64) error {
	for len(m.log) > 0 && m.log[len(m.log)-1].Index >= from {
		m.log = m.log[:len(m.log)-1]
	}
	return nil
}

// Load implements Storage.
func (m *MemStorage) Load() (uint64, string, []Entry, error) {
	out := make([]Entry, len(m.log))
	copy(out, m.log)
	return m.term, m.votedFor, out, nil
}

// record is one line of a FileStorage log: a state save, an entry append,
// or a truncation marker. Replaying the lines in order rebuilds the state.
type record struct {
	Kind     string `json:"kind"` // "state" | "entry" | "trunc"
	Term     uint64 `json:"term,omitempty"`
	VotedFor string `json:"voted_for,omitempty"`
	Entry    *Entry `json:"entry,omitempty"`
	From     uint64 `json:"from,omitempty"`
}

// FileStorage persists Raft state as a JSON-lines record log, one fsync'd
// file per node. Like the control plane's FileJournal, Load tolerates a
// torn tail: it replays the longest valid prefix of intact lines and
// truncates the file there, so a crash mid-write loses at most the record
// being written — which the protocol never promised.
type FileStorage struct {
	f    *os.File
	path string
}

// OpenFileStorage opens (creating if needed) the record log at path and
// recovers its valid prefix.
func OpenFileStorage(path string) (*FileStorage, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("raft: open storage: %w", err)
	}
	st := &FileStorage{f: f, path: path}
	if err := st.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// recover truncates the file to its longest valid prefix of records.
func (s *FileStorage) recover() error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("raft: read storage: %w", err)
	}
	valid := validRecordPrefix(data)
	if valid < int64(len(data)) {
		if err := s.f.Truncate(valid); err != nil {
			return fmt.Errorf("raft: truncate torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(0, 2); err != nil {
		return err
	}
	return nil
}

// validRecordPrefix scans complete, decodable lines and returns the byte
// offset after the last good one.
func validRecordPrefix(data []byte) int64 {
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // incomplete tail line
		}
		var r record
		if err := json.Unmarshal(data[:nl], &r); err != nil {
			break
		}
		switch r.Kind {
		case "state", "trunc":
		case "entry":
			if r.Entry == nil {
				return off
			}
		default:
			return off
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return off
}

func (s *FileStorage) write(recs ...record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("raft: write storage: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("raft: sync storage: %w", err)
	}
	return nil
}

// SaveState implements Storage.
func (s *FileStorage) SaveState(term uint64, votedFor string) error {
	return s.write(record{Kind: "state", Term: term, VotedFor: votedFor})
}

// AppendEntries implements Storage.
func (s *FileStorage) AppendEntries(entries []Entry) error {
	recs := make([]record, len(entries))
	for i := range entries {
		e := entries[i]
		recs[i] = record{Kind: "entry", Entry: &e}
	}
	return s.write(recs...)
}

// TruncateEntries implements Storage.
func (s *FileStorage) TruncateEntries(from uint64) error {
	return s.write(record{Kind: "trunc", From: from})
}

// Load implements Storage.
func (s *FileStorage) Load() (uint64, string, []Entry, error) {
	if _, err := s.f.Seek(0, 0); err != nil {
		return 0, "", nil, err
	}
	var (
		term     uint64
		votedFor string
		log      []Entry
	)
	sc := bufio.NewScanner(s.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			break // torn tail already truncated on open; stop defensively
		}
		switch r.Kind {
		case "state":
			term, votedFor = r.Term, r.VotedFor
		case "entry":
			if r.Entry != nil {
				log = append(log, *r.Entry)
			}
		case "trunc":
			for len(log) > 0 && log[len(log)-1].Index >= r.From {
				log = log[:len(log)-1]
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, "", nil, err
	}
	if _, err := s.f.Seek(0, 2); err != nil {
		return 0, "", nil, err
	}
	return term, votedFor, log, nil
}

// Close releases the underlying file.
func (s *FileStorage) Close() error { return s.f.Close() }
