package raft

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

func newTestCluster(t *testing.T, n int, seed int64) *Cluster {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("cp-%c", 'a'+i)
	}
	c, err := NewCluster(ids, DefaultConfig(), seed, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// electLeader ticks until a leader emerges.
func electLeader(t *testing.T, c *Cluster) string {
	t.Helper()
	for i := 0; i < 400; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("tick: %v", err)
		}
		if id := c.Leader(); id != "" {
			return id
		}
	}
	t.Fatalf("no leader elected in 400 ticks")
	return ""
}

// proposeAndCommit submits data through the leader and ticks until every
// running node has committed it.
func proposeAndCommit(t *testing.T, c *Cluster, leader string, data []byte) uint64 {
	t.Helper()
	idx, _, err := c.Propose(leader, data)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	for i := 0; i < 200; i++ {
		if c.CommitIndex(leader) >= idx {
			return idx
		}
		if err := c.Tick(); err != nil {
			t.Fatalf("tick: %v", err)
		}
	}
	t.Fatalf("entry %d not committed in 200 ticks", idx)
	return 0
}

func TestElectionSingleLeader(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	leader := electLeader(t, c)
	// Settle and confirm exactly one leader at a stable term.
	if err := c.TickN(50); err != nil {
		t.Fatal(err)
	}
	leaders := 0
	var term uint64
	for _, m := range c.Members() {
		if m.Role == "leader" {
			leaders++
			term = m.Term
		}
	}
	if leaders != 1 {
		t.Fatalf("want exactly 1 leader, got %d", leaders)
	}
	for _, m := range c.Members() {
		if m.Term != term {
			t.Fatalf("member %s at term %d, leader at %d", m.ID, m.Term, term)
		}
		if m.Leader != leader && m.Role != "leader" {
			t.Fatalf("member %s leader hint %q, want %q", m.ID, m.Leader, leader)
		}
	}
}

func TestReplicationCommitsEverywhere(t *testing.T) {
	c := newTestCluster(t, 5, 7)
	leader := electLeader(t, c)
	for i := 0; i < 20; i++ {
		proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("op-%d", i)))
	}
	if err := c.TickN(20); err != nil { // let commit index propagate
		t.Fatal(err)
	}
	want := c.Entries(leader)
	if len(want) < 20 {
		t.Fatalf("leader committed %d entries, want >= 20", len(want))
	}
	for _, id := range c.IDs() {
		if got := c.Entries(id); !reflect.DeepEqual(got, want) {
			t.Fatalf("member %s committed log diverges from leader", id)
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	leader := electLeader(t, c)
	if err := c.TickN(10); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.IDs() {
		if id == leader {
			continue
		}
		_, _, err := c.Propose(id, []byte("x"))
		var nl *NotLeaderError
		if !asNotLeader(err, &nl) {
			t.Fatalf("propose on follower %s: got %v, want NotLeaderError", id, err)
		}
		if nl.Leader != leader {
			t.Fatalf("leader hint %q, want %q", nl.Leader, leader)
		}
	}
}

func asNotLeader(err error, out **NotLeaderError) bool {
	if e, ok := err.(*NotLeaderError); ok {
		*out = e
		return true
	}
	return false
}

func TestLeaderFailoverPreservesCommitted(t *testing.T) {
	c := newTestCluster(t, 3, 11)
	leader := electLeader(t, c)
	for i := 0; i < 5; i++ {
		proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("committed-%d", i)))
	}
	before := c.Entries(leader)

	c.Stop(leader)
	next := electLeader(t, c)
	if next == leader {
		t.Fatalf("stopped node %s re-elected", leader)
	}
	// New leader's no-op must commit, covering the inherited tail.
	for i := 0; i < 200 && c.CommitIndex(next) < uint64(len(before)); i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Entries(next)
	if len(after) < len(before) {
		t.Fatalf("new leader committed %d < %d entries from before failover", len(after), len(before))
	}
	if !reflect.DeepEqual(after[:len(before)], before) {
		t.Fatalf("committed prefix changed across failover")
	}
	proposeAndCommit(t, c, next, []byte("post-failover"))
}

func TestRestartRecoversFromStorage(t *testing.T) {
	c := newTestCluster(t, 3, 13)
	leader := electLeader(t, c)
	for i := 0; i < 4; i++ {
		proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("v-%d", i)))
	}
	committed := c.Entries(leader)

	c.Stop(leader)
	next := electLeader(t, c)
	if err := c.Restart(leader); err != nil {
		t.Fatalf("restart: %v", err)
	}
	proposeAndCommit(t, c, next, []byte("after-restart"))
	// The restarted node catches up to the full committed log.
	var want []Entry
	for i := 0; i < 300; i++ {
		want = c.Entries(next)
		got := c.Entries(leader)
		if len(got) >= len(committed)+1 && reflect.DeepEqual(got, want[:len(got)]) && len(got) == len(want) {
			return
		}
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("restarted node did not catch up: %d vs %d entries", len(c.Entries(leader)), len(want))
}

func TestMinorityPartitionStillCommits(t *testing.T) {
	c := newTestCluster(t, 3, 17)
	leader := electLeader(t, c)
	// Cut one follower off.
	var lag string
	for _, id := range c.IDs() {
		if id != leader {
			lag = id
			break
		}
	}
	c.Isolate(lag)
	for i := 0; i < 6; i++ {
		proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("maj-%d", i)))
	}
	if got := c.CommitIndex(lag); got >= c.CommitIndex(leader) {
		t.Fatalf("isolated node commit %d should lag leader %d", got, c.CommitIndex(leader))
	}
	// Heal: the laggard catches up without disturbing the leader.
	c.HealAll()
	for i := 0; i < 300 && c.CommitIndex(lag) < c.CommitIndex(leader); i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(c.Entries(lag), c.Entries(leader)) {
		t.Fatalf("healed follower log diverges")
	}
}

func TestSplitBrainStaleLeaderFenced(t *testing.T) {
	c := newTestCluster(t, 3, 19)
	old := electLeader(t, c)
	proposeAndCommit(t, c, old, []byte("pre-split"))

	// Isolate the leader: it keeps believing it leads, but nothing it
	// accepts can commit (quorum lost).
	c.Isolate(old)
	staleIdx, staleTerm, err := c.Propose(old, []byte("stale-uncommitted"))
	if err != nil {
		t.Fatalf("stale leader propose: %v", err)
	}
	commitBefore := c.CommitIndex(old)
	for i := 0; i < 100; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if c.CommitIndex(old) != commitBefore {
		t.Fatalf("isolated leader advanced commit without quorum")
	}
	if c.QuorumReachable(old) {
		t.Fatalf("isolated leader still reports quorum reachable")
	}

	// The majority side elects a new leader and commits real work.
	next := electLeader(t, c)
	if next == old {
		t.Fatalf("isolated node counted as cluster leader")
	}
	proposeAndCommit(t, c, next, []byte("majority-work"))

	// Heal: the stale leader steps down and its uncommitted entry is
	// truncated away in favor of the majority log.
	c.HealAll()
	for i := 0; i < 300; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if c.Status(old).Role == "follower" && c.CommitIndex(old) == c.CommitIndex(next) {
			break
		}
	}
	st := c.Status(old)
	if st.Role != "follower" {
		t.Fatalf("stale leader role %s after heal, want follower", st.Role)
	}
	if !reflect.DeepEqual(c.Entries(old), c.Entries(next)) {
		t.Fatalf("logs diverge after heal")
	}
	for _, e := range c.Entries(old) {
		if string(e.Data) == "stale-uncommitted" {
			t.Fatalf("uncommitted stale entry survived the heal")
		}
	}
	// The proposer-side truncation detector: the entry now occupying the
	// stale proposal's index carries the majority's term, so a proposer
	// comparing TermAt against the term Propose returned sees the loss even
	// though the old node's commit index has advanced past that index.
	if c.CommitIndex(old) < staleIdx {
		t.Fatalf("commit %d did not pass stale index %d after heal", c.CommitIndex(old), staleIdx)
	}
	if at, ok := c.TermAt(old, staleIdx); !ok || at == staleTerm {
		t.Fatalf("TermAt(%d) = %d,%v — want the majority's term, not the stale proposal's %d", staleIdx, at, ok, staleTerm)
	}
}

func TestAsymmetricPartitionDropsOneDirection(t *testing.T) {
	c := newTestCluster(t, 3, 23)
	leader := electLeader(t, c)
	var peer string
	for _, id := range c.IDs() {
		if id != leader {
			peer = id
			break
		}
	}
	// Cut only leader->peer: the peer stops hearing heartbeats and will
	// eventually start elections with a higher term that DOES reach the
	// leader, deposing it — the classic asymmetric-partition churn.
	c.PartitionOneWay(leader, peer)
	deposed := false
	for i := 0; i < 200; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if c.Status(leader).Role != "leader" {
			deposed = true
			break
		}
	}
	if !deposed {
		t.Fatalf("one-way cut never disturbed the leader; partition not asymmetric")
	}
	c.HealAll()
	next := electLeader(t, c)
	proposeAndCommit(t, c, next, []byte("stable-again"))
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		c := newTestCluster(t, 5, 42)
		leader := electLeader(t, c)
		for i := 0; i < 10; i++ {
			proposeAndCommit(t, c, leader, []byte(fmt.Sprintf("d-%d", i)))
		}
		c.Stop(leader)
		next := electLeader(t, c)
		proposeAndCommit(t, c, next, []byte("tail"))
		b, err := json.Marshal(struct {
			Members []MemberStatus
			Log     []Entry
			Changes uint64
			Dropped uint64
			Now     uint64
		}{c.Members(), c.Entries(next), c.LeaderChanges(), c.DroppedMessages(), c.Now()})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different runs:\n%s\n%s", a, b)
	}
}

func TestTakeCommittedDrainsOnce(t *testing.T) {
	c := newTestCluster(t, 3, 29)
	leader := electLeader(t, c)
	proposeAndCommit(t, c, leader, []byte("one"))
	proposeAndCommit(t, c, leader, []byte("two"))
	first := c.TakeCommitted(leader)
	if len(first) == 0 {
		t.Fatalf("no committed entries drained")
	}
	if got := c.TakeCommitted(leader); len(got) != 0 {
		t.Fatalf("second drain returned %d entries, want 0", len(got))
	}
	proposeAndCommit(t, c, leader, []byte("three"))
	more := c.TakeCommitted(leader)
	found := false
	for _, e := range more {
		if string(e.Data) == "three" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry committed after drain not returned by next drain")
	}
	st := c.Status(leader)
	if st.Applied != st.Commit {
		t.Fatalf("applied %d != commit %d after drain", st.Applied, st.Commit)
	}
}

func TestQuorumReachable(t *testing.T) {
	c := newTestCluster(t, 5, 31)
	leader := electLeader(t, c)
	if !c.QuorumReachable(leader) {
		t.Fatalf("healthy leader should reach quorum")
	}
	// Stop two of five: quorum still holds for survivors.
	stopped := 0
	for _, id := range c.IDs() {
		if id != leader && stopped < 2 {
			c.Stop(id)
			stopped++
		}
	}
	if !c.QuorumReachable(leader) {
		t.Fatalf("3/5 running should still be quorum")
	}
	// Stop a third: quorum lost.
	for _, id := range c.IDs() {
		if id != leader && !c.Stopped(id) {
			c.Stop(id)
			break
		}
	}
	if c.QuorumReachable(leader) {
		t.Fatalf("2/5 running should not be quorum")
	}
}

func TestSingleNodeClusterCommitsAlone(t *testing.T) {
	c, err := NewCluster([]string{"solo"}, DefaultConfig(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	leader := electLeader(t, c)
	if leader != "solo" {
		t.Fatalf("leader %q", leader)
	}
	proposeAndCommit(t, c, leader, []byte("only"))
}
