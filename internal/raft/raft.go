// Package raft is a small, deterministic, embedded Raft: leader election
// with randomized timeouts on a virtual tick clock, log replication with
// follower catch-up, quorum commit, and persistent term/vote/log through a
// pluggable Storage. It exists to replicate the control plane's write-ahead
// saga journal across 3/5 orchestrator nodes (controlplane.ReplicaSet); the
// whole protocol runs single-threaded under the owning Cluster, so chaos
// campaigns and crash-point tests reproduce byte-identically from a seed.
//
// The implementation follows the Raft paper (Ongaro & Ousterhout, 2014)
// restricted to what a replicated journal needs: no membership changes, no
// snapshots/compaction (journals are bounded per scenario), no client
// sessions. Safety-critical rules are all here: election restriction
// (§5.4.1, votes only for up-to-date candidates), commit only through a
// current-term entry (§5.4.2, via the leader's no-op), and conflict
// truncation on divergent follower logs (§5.3).
package raft

import (
	"errors"
	"fmt"
	"math/rand"
)

// Role is a node's protocol role.
type Role uint8

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Entry is one replicated log record. Index is 1-based and dense; Data is
// opaque to the protocol (the control plane stores encoded journal
// entries). A nil Data marks a leader no-op appended on election win so the
// new leader can commit inherited entries immediately (§5.4.2).
type Entry struct {
	Index uint64 `json:"index"`
	Term  uint64 `json:"term"`
	Data  []byte `json:"data,omitempty"`
}

// MsgKind discriminates protocol messages.
type MsgKind uint8

// Message kinds.
const (
	MsgVote MsgKind = iota
	MsgVoteResp
	MsgApp
	MsgAppResp
)

// Message is one protocol message in flight between nodes.
type Message struct {
	Kind MsgKind
	From string
	To   string
	Term uint64

	// MsgVote: candidate's log position for the up-to-date check.
	LastLogIndex uint64
	LastLogTerm  uint64

	// MsgApp: replication batch.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	Commit       uint64

	// MsgVoteResp.
	Granted bool
	// MsgAppResp: Success with MatchIndex = highest replicated index, or a
	// rejection whose MatchIndex hints where the follower's log ends.
	Success    bool
	MatchIndex uint64
}

// Config bounds the protocol timers, all in virtual ticks.
type Config struct {
	// ElectionTimeoutMin/Max bracket the randomized election timeout; each
	// reset draws uniformly from [Min, Max).
	ElectionTimeoutMin int
	ElectionTimeoutMax int
	// HeartbeatEvery is the leader's idle append cadence.
	HeartbeatEvery int
	// MaxAppendEntries caps one replication batch.
	MaxAppendEntries int
}

// DefaultConfig returns the standard timer set: 10-20 tick elections, 3
// tick heartbeats.
func DefaultConfig() Config {
	return Config{ElectionTimeoutMin: 10, ElectionTimeoutMax: 20, HeartbeatEvery: 3, MaxAppendEntries: 64}
}

func (c *Config) defaults() {
	if c.ElectionTimeoutMin <= 0 {
		c.ElectionTimeoutMin = 10
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 3
	}
	if c.MaxAppendEntries <= 0 {
		c.MaxAppendEntries = 64
	}
}

// ErrNotLeader is returned by Propose on a non-leader node. Use errors.As
// with *NotLeaderError to extract the leader hint.
var ErrNotLeader = errors.New("raft: not the leader")

// NotLeaderError carries the last known leader as a redirect hint.
type NotLeaderError struct{ Leader string }

// Error implements error.
func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "raft: not the leader (no leader known)"
	}
	return fmt.Sprintf("raft: not the leader (leader is %s)", e.Leader)
}

// Is makes errors.Is(err, ErrNotLeader) match.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// node is one Raft participant. All methods run single-threaded under the
// owning Cluster's lock; sends go through the injected send func.
type node struct {
	id      string
	members []string // all member IDs including self, sorted by the Cluster
	cfg     Config
	storage Storage
	rng     *rand.Rand

	// Persistent state (mirrored to storage before any message that
	// depends on it leaves the node).
	term     uint64
	votedFor string
	log      []Entry // log[i].Index == i+1

	// Volatile state.
	role    Role
	leader  string // last known leader (redirect hint)
	commit  uint64
	applied uint64 // drained by TakeCommitted
	votes   map[string]bool
	next    map[string]uint64
	match   map[string]uint64

	elapsed int // ticks since last election-timer reset
	timeout int // current randomized election timeout
}

// newNode restores a node from storage (a fresh storage yields term 0 and
// an empty log).
func newNode(id string, members []string, cfg Config, st Storage, rng *rand.Rand) (*node, error) {
	term, votedFor, log, err := st.Load()
	if err != nil {
		return nil, fmt.Errorf("raft: load %s: %w", id, err)
	}
	n := &node{
		id:       id,
		members:  members,
		cfg:      cfg,
		storage:  st,
		rng:      rng,
		term:     term,
		votedFor: votedFor,
		log:      log,
	}
	n.resetTimer()
	return n, nil
}

func (n *node) majority() int { return len(n.members)/2 + 1 }

func (n *node) lastIndex() uint64 { return uint64(len(n.log)) }

func (n *node) termAt(index uint64) uint64 {
	if index == 0 || index > n.lastIndex() {
		return 0
	}
	return n.log[index-1].Term
}

// resetTimer re-arms the randomized election timeout.
func (n *node) resetTimer() {
	n.elapsed = 0
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	n.timeout = n.cfg.ElectionTimeoutMin + n.rng.Intn(span)
}

// persistState mirrors term/vote to storage.
func (n *node) persistState() error { return n.storage.SaveState(n.term, n.votedFor) }

// tick advances virtual time by one tick: followers and candidates count
// toward an election timeout, leaders heartbeat.
func (n *node) tick(send func(Message)) error {
	n.elapsed++
	if n.role == Leader {
		if n.elapsed >= n.cfg.HeartbeatEvery {
			n.elapsed = 0
			n.broadcastAppend(send)
		}
		return nil
	}
	if n.elapsed >= n.timeout {
		return n.startElection(send)
	}
	return nil
}

// startElection begins a new term as candidate (§5.2).
func (n *node) startElection(send func(Message)) error {
	n.term++
	n.role = Candidate
	n.votedFor = n.id
	n.leader = ""
	n.votes = map[string]bool{n.id: true}
	n.resetTimer()
	if err := n.persistState(); err != nil {
		return err
	}
	if len(n.votes) >= n.majority() { // single-node cluster
		return n.becomeLeader(send)
	}
	for _, p := range n.members {
		if p == n.id {
			continue
		}
		send(Message{
			Kind: MsgVote, From: n.id, To: p, Term: n.term,
			LastLogIndex: n.lastIndex(), LastLogTerm: n.termAt(n.lastIndex()),
		})
	}
	return nil
}

// becomeLeader initializes leader state and appends the no-op entry that
// lets this term commit everything inherited from prior terms (§5.4.2).
func (n *node) becomeLeader(send func(Message)) error {
	n.role = Leader
	n.leader = n.id
	n.elapsed = 0
	n.next = make(map[string]uint64, len(n.members))
	n.match = make(map[string]uint64, len(n.members))
	for _, p := range n.members {
		n.next[p] = n.lastIndex() + 1
		n.match[p] = 0
	}
	noop := Entry{Index: n.lastIndex() + 1, Term: n.term}
	n.log = append(n.log, noop)
	if err := n.storage.AppendEntries([]Entry{noop}); err != nil {
		return err
	}
	n.match[n.id] = n.lastIndex()
	n.maybeCommit()
	n.broadcastAppend(send)
	return nil
}

// stepDown converts to follower in term (which must be >= n.term).
func (n *node) stepDown(term uint64) error {
	changed := term != n.term
	n.term = term
	if changed {
		n.votedFor = ""
	}
	n.role = Follower
	n.resetTimer()
	if changed {
		return n.persistState()
	}
	return nil
}

// propose appends one entry to the leader's log and starts replication.
func (n *node) propose(data []byte, send func(Message)) (uint64, error) {
	if n.role != Leader {
		return 0, &NotLeaderError{Leader: n.leader}
	}
	e := Entry{Index: n.lastIndex() + 1, Term: n.term, Data: data}
	n.log = append(n.log, e)
	if err := n.storage.AppendEntries([]Entry{e}); err != nil {
		return 0, err
	}
	n.match[n.id] = n.lastIndex()
	n.maybeCommit() // a single-node cluster commits on its own vote
	n.broadcastAppend(send)
	return e.Index, nil
}

// broadcastAppend sends one replication batch (possibly empty — a
// heartbeat) to every peer.
func (n *node) broadcastAppend(send func(Message)) {
	for _, p := range n.members {
		if p == n.id {
			continue
		}
		n.sendAppend(p, send)
	}
}

func (n *node) sendAppend(to string, send func(Message)) {
	prev := n.next[to] - 1
	var batch []Entry
	if n.next[to] <= n.lastIndex() {
		hi := n.lastIndex()
		if hi-prev > uint64(n.cfg.MaxAppendEntries) {
			hi = prev + uint64(n.cfg.MaxAppendEntries)
		}
		batch = append(batch, n.log[prev:hi]...)
	}
	send(Message{
		Kind: MsgApp, From: n.id, To: to, Term: n.term,
		PrevLogIndex: prev, PrevLogTerm: n.termAt(prev),
		Entries: batch, Commit: n.commit,
	})
}

// maybeCommit advances the leader commit index to the largest
// quorum-replicated index of the current term (§5.4.2).
func (n *node) maybeCommit() {
	for idx := n.lastIndex(); idx > n.commit; idx-- {
		if n.termAt(idx) != n.term {
			break // only current-term entries commit by counting
		}
		count := 0
		for _, p := range n.members {
			if n.match[p] >= idx {
				count++
			}
		}
		if count >= n.majority() {
			n.commit = idx
			return
		}
	}
}

// step processes one incoming message.
func (n *node) step(m Message, send func(Message)) error {
	if m.Term > n.term {
		if err := n.stepDown(m.Term); err != nil {
			return err
		}
	}
	switch m.Kind {
	case MsgVote:
		return n.onVote(m, send)
	case MsgVoteResp:
		return n.onVoteResp(m, send)
	case MsgApp:
		return n.onApp(m, send)
	case MsgAppResp:
		n.onAppResp(m, send)
	}
	return nil
}

// onVote applies the voting rules: one vote per term, candidates with stale
// logs rejected (§5.4.1).
func (n *node) onVote(m Message, send func(Message)) error {
	grant := false
	if m.Term >= n.term && (n.votedFor == "" || n.votedFor == m.From) {
		last := n.lastIndex()
		upToDate := m.LastLogTerm > n.termAt(last) ||
			(m.LastLogTerm == n.termAt(last) && m.LastLogIndex >= last)
		if upToDate {
			grant = true
			n.votedFor = m.From
			n.resetTimer()
			if err := n.persistState(); err != nil {
				return err
			}
		}
	}
	send(Message{Kind: MsgVoteResp, From: n.id, To: m.From, Term: n.term, Granted: grant})
	return nil
}

func (n *node) onVoteResp(m Message, send func(Message)) error {
	if n.role != Candidate || m.Term != n.term || !m.Granted {
		return nil
	}
	n.votes[m.From] = true
	if len(n.votes) >= n.majority() {
		return n.becomeLeader(send)
	}
	return nil
}

// onApp applies a replication batch: consistency check against the
// previous entry, conflict truncation, append, commit advance (§5.3).
func (n *node) onApp(m Message, send func(Message)) error {
	if m.Term < n.term {
		send(Message{Kind: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: false, MatchIndex: n.lastIndex()})
		return nil
	}
	n.leader = m.From
	if n.role != Follower {
		if err := n.stepDown(m.Term); err != nil {
			return err
		}
		n.leader = m.From
	}
	n.resetTimer()

	if m.PrevLogIndex > n.lastIndex() || n.termAt(m.PrevLogIndex) != m.PrevLogTerm {
		// Log mismatch: hint the leader where this log could match.
		hint := n.lastIndex()
		if m.PrevLogIndex > 0 && m.PrevLogIndex-1 < hint {
			hint = m.PrevLogIndex - 1
		}
		send(Message{Kind: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: false, MatchIndex: hint})
		return nil
	}

	// Append, truncating any conflicting suffix first.
	for i, e := range m.Entries {
		if e.Index <= n.lastIndex() {
			if n.termAt(e.Index) == e.Term {
				continue // already have it
			}
			n.log = n.log[:e.Index-1]
			if err := n.storage.TruncateEntries(e.Index); err != nil {
				return err
			}
		}
		n.log = append(n.log, m.Entries[i:]...)
		if err := n.storage.AppendEntries(m.Entries[i:]); err != nil {
			return err
		}
		break
	}

	lastNew := m.PrevLogIndex + uint64(len(m.Entries))
	if m.Commit > n.commit {
		n.commit = m.Commit
		if lastNew < n.commit {
			n.commit = lastNew
		}
	}
	send(Message{Kind: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: true, MatchIndex: lastNew})
	return nil
}

func (n *node) onAppResp(m Message, send func(Message)) {
	if n.role != Leader || m.Term != n.term {
		return
	}
	if m.Success {
		if m.MatchIndex > n.match[m.From] {
			n.match[m.From] = m.MatchIndex
		}
		n.next[m.From] = n.match[m.From] + 1
		n.maybeCommit()
		if n.next[m.From] <= n.lastIndex() {
			n.sendAppend(m.From, send) // follower catch-up: keep streaming
		}
		return
	}
	// Rejected: back next off to the follower's hint and retry.
	next := m.MatchIndex + 1
	if next >= n.next[m.From] {
		next = n.next[m.From] - 1
	}
	if next < 1 {
		next = 1
	}
	n.next[m.From] = next
	n.sendAppend(m.From, send)
}
