package endpoint

import (
	"testing"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

func TestHBMHitServedLocally(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	b.EnableHBMCache(HBMConfig{SizeBytes: 1 << 20, Ways: 8, HitLatency: 150 * sim.Nanosecond})

	// First access: miss, full datapath latency.
	miss := b.AccessAt(0x1000, mem.CachelineSize, false)
	if miss < DatapathRTT {
		t.Fatalf("first access %v should pay the full RTT", miss)
	}
	// Second access to the same line: HBM hit, an order of magnitude lower.
	hit := b.AccessAt(0x1000, mem.CachelineSize, false)
	if hit > 200*sim.Nanosecond {
		t.Fatalf("HBM hit latency %v, want ~150ns", hit)
	}
	hits, misses := b.HBMStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hbm stats hits=%d misses=%d", hits, misses)
	}
}

func TestHBMEvictionRestoresRTT(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	// Tiny direct-mapped-ish cache: 2 sets x 1 way.
	b.EnableHBMCache(HBMConfig{SizeBytes: 2 * mem.CachelineSize, Ways: 1, HitLatency: 150 * sim.Nanosecond})
	b.AccessAt(0x0000, mem.CachelineSize, false)
	// Same set (stride = 2 lines with 2 sets), evicts the first.
	b.AccessAt(0x0100, mem.CachelineSize, false)
	again := b.AccessAt(0x0000, mem.CachelineSize, false)
	if again < DatapathRTT {
		t.Fatalf("evicted line should pay the full RTT again, got %v", again)
	}
}

func TestHBMDisabledFallsBack(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	withAddr := b.AccessAt(0x42000, mem.CachelineSize, false)
	plain := b.Access(mem.CachelineSize, false)
	diff := withAddr - plain
	if diff < -20*sim.Nanosecond || diff > 20*sim.Nanosecond {
		t.Fatalf("AccessAt without HBM diverges from Access: %v vs %v", withAddr, plain)
	}
}

func TestHBMThroughThreadAccess(t *testing.T) {
	// End to end: a thread re-reading a remote buffer larger than its CPU
	// caches but smaller than the HBM cache should see HBM-hit latencies
	// on the second pass.
	k := sim.NewKernel()
	sys := mem.NewSystem(k, 0)
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	b.EnableHBMCache(HBMConfig{SizeBytes: 64 << 20, Ways: 8, HitLatency: 150 * sim.Nanosecond})
	remote := sys.AddNode(&mem.Node{
		Name: "remote", CPULess: true, Capacity: 1 << 30, Distance: 100, Backend: b,
	})
	sys.SetLLC(0, mem.NewCache("llc", 1<<20, 8))
	buf, err := sys.Alloc(16<<20, func(int) mem.NodeID { return remote })
	if err != nil {
		t.Fatal(err)
	}
	cfg := mem.DefaultCPUConfig()
	cfg.L1Size, cfg.L2Size = 16<<10, 64<<10 // small CPU caches
	th := mem.NewThread(sys, 0, cfg)
	var firstPass, secondPass sim.Time
	k.Go("app", func(p *sim.Proc) {
		const stride = 64 << 10 // new page (and new lines) each access
		start := p.Now()
		for off := int64(0); off < buf.Size; off += stride {
			th.Access(p, buf.Addr(off), 8, false)
		}
		firstPass = p.Now() - start
		th.FlushCaches()
		sys.LLC(0).Flush()
		start = p.Now()
		for off := int64(0); off < buf.Size; off += stride {
			th.Access(p, buf.Addr(off), 8, false)
		}
		secondPass = p.Now() - start
	})
	k.Run()
	if secondPass*3 > firstPass {
		t.Fatalf("HBM cache ineffective: first=%v second=%v", firstPass, secondPass)
	}
	hits, _ := b.HBMStats()
	if hits == 0 {
		t.Fatal("no HBM hits recorded")
	}
}
