package endpoint

import (
	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

// HBMConfig parameterizes the optional hardware caching layer the paper
// proposes as future work (Section VII): "the introduction of an
// appropriate caching layer at the hardware-level (e.g. using HBM
// intermediate memory as cache)". The cache sits in the compute endpoint's
// FPGA, in front of the network: a hit is served from on-card HBM without
// crossing the fabric.
type HBMConfig struct {
	// SizeBytes is the HBM capacity used as cache (Alveo-class cards carry
	// 8-32 GiB).
	SizeBytes int64
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access time of an HBM hit: one FPGA-stack crossing
	// plus the HBM access itself — still an order of magnitude below the
	// 950 ns network round trip.
	HitLatency sim.Time
}

// DefaultHBMConfig returns a 4 GiB, 8-way cache at 150 ns.
func DefaultHBMConfig() HBMConfig {
	return HBMConfig{
		SizeBytes:  4 << 30,
		Ways:       8,
		HitLatency: 150 * sim.Nanosecond,
	}
}

// hbmCache is the runtime state.
type hbmCache struct {
	cache  *mem.Cache
	hitLat sim.Time
	pipe   *sim.Pipe // HBM bandwidth (not usually binding)

	hits, misses int64
}

// EnableHBMCache installs the caching layer on the backend. Reads that hit
// are served at the HBM hit latency; misses pay the full datapath and
// install the line. Writes are write-through (the donor's memory stays the
// home), updating the cached copy when present.
func (b *RemoteBackend) EnableHBMCache(cfg HBMConfig) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.HitLatency <= 0 {
		panic("endpoint: invalid HBM config")
	}
	b.hbm = &hbmCache{
		cache:  mem.NewCache(b.name+".hbm", cfg.SizeBytes, cfg.Ways),
		hitLat: cfg.HitLatency,
		pipe:   sim.NewPipe(b.k, 400e9), // HBM2 ~400 GB/s
	}
}

// HBMStats returns (hits, misses) of the HBM layer; zeros when disabled.
func (b *RemoteBackend) HBMStats() (hits, misses int64) {
	if b.hbm == nil {
		return 0, 0
	}
	return b.hbm.hits, b.hbm.misses
}

// AccessAt implements mem.AddrBackend: with the HBM layer enabled, the
// access consults the cache line by line; without it, it behaves exactly
// like Access.
func (b *RemoteBackend) AccessAt(addr uint64, size int64, write bool) sim.Time {
	if b.hbm == nil || size <= 0 {
		return b.Access(size, write)
	}
	var hitLines, missBytes int64
	first := addr &^ (mem.CachelineSize - 1)
	for off := int64(0); off < size; off += mem.CachelineSize {
		la := first + uint64(off)
		if b.hbm.cache.Lookup(la) {
			hitLines++
		} else {
			missBytes += mem.CachelineSize
		}
	}
	var lat sim.Time
	if hitLines > 0 {
		_, done := b.hbm.pipe.Reserve(hitLines * mem.CachelineSize)
		l := b.hbm.hitLat + (done - b.k.Now())
		if l > lat {
			lat = l
		}
		b.hbm.hits += hitLines
	}
	if missBytes > 0 {
		// Write-through for writes; for reads the fill installs the lines
		// (Lookup above already allocated them in the HBM cache).
		l := b.Access(missBytes, write)
		if l > lat {
			lat = l
		}
		b.hbm.misses += missBytes / mem.CachelineSize
	}
	return lat
}

var _ mem.AddrBackend = (*RemoteBackend)(nil)
