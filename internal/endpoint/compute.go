// Package endpoint implements the two ThymesisFlow endpoint roles
// (Section IV-A): the compute endpoint, which introduces remote memory into
// a host's real address space (OpenCAPI M1 mode), and the memory-stealing
// endpoint, which exposes pinned donor memory to the network (OpenCAPI C1
// mode). It also provides RemoteBackend, the mem.Backend adapter that lets
// disaggregated NUMA nodes price accesses through the same channel pipes the
// transaction datapath uses.
package endpoint

import (
	"fmt"
	"sort"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/rmmu"
	"thymesisflow/internal/route"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// C1BytesPerSec is the sustainable bandwidth of the OpenCAPI C1 interface
// with 128-byte transactions (~16 GiB/s; Section VI-C: 256-byte bursts
// would reach 20 GiB/s, but POWER9 only issues 128-byte cachelines).
const C1BytesPerSec = 16 * phy.GiB

// SideLatency is the one-way latency added by one endpoint's attachment
// hardware: one serDES crossing plus one FPGA-stack crossing. Two endpoint
// sides, both directions, plus the network serDES on each direction
// reconstruct the paper's 950 ns flit RTT.
const SideLatency = phy.SerdesCrossing + phy.FPGAStackCrossing

// ComputeEndpoint is the recipient-side device: it receives cacheline
// transactions from the host bus (M1 mode), translates them through its
// RMMU, and forwards them via the routing layer. Responses arriving on any
// attached port complete the matching outstanding request.
type ComputeEndpoint struct {
	k      *sim.Kernel
	name   string
	rmmu   *rmmu.RMMU
	router *route.Router

	nextTag uint32
	waiting map[uint32]*pendingReq

	// linkDown fences the issue path after LLC escalation or forced detach.
	linkDown bool

	// lat, when set, enables per-stage latency attribution: every issued
	// transaction carries a latency.Record that the layers below stamp.
	lat *latency.Sink

	loads   int64
	stores  int64
	faulted int64
}

type pendingReq struct {
	sig  *sim.Signal
	resp *capi.Transaction
	err  error
}

// ErrLinkDown is the error outstanding and subsequent requests complete with
// after the endpoint's link has been fenced (LLC escalation or forced
// detach). Callers distinguish it from RMMU translation faults to decide
// between retrying elsewhere and reporting a wild access.
var ErrLinkDown = fmt.Errorf("endpoint: link down")

// NewCompute builds a compute endpoint with the given RMMU geometry.
func NewCompute(k *sim.Kernel, name string, sections int, sectionSize int64) (*ComputeEndpoint, error) {
	m, err := rmmu.New(sections, sectionSize)
	if err != nil {
		return nil, err
	}
	m.Instrument(k) // per-translation trace instants, once a tracer attaches
	return &ComputeEndpoint{
		k:       k,
		name:    name,
		rmmu:    m,
		router:  route.NewRouter(name + ".router"),
		waiting: make(map[uint32]*pendingReq),
	}, nil
}

// Name returns the endpoint name.
func (ce *ComputeEndpoint) Name() string { return ce.name }

// RMMU exposes the endpoint's section table for configuration by the node
// agent.
func (ce *ComputeEndpoint) RMMU() *rmmu.RMMU { return ce.rmmu }

// Router exposes the routing layer for flow configuration.
func (ce *ComputeEndpoint) Router() *route.Router { return ce.router }

// SetLatencySink enables per-stage latency attribution: subsequent issues
// carry a record through every layer and fold into the sink on completion.
// A nil sink disables attribution (the zero-overhead default).
func (ce *ComputeEndpoint) SetLatencySink(s *latency.Sink) { ce.lat = s }

// AttachPort registers an LLC port whose inbound traffic carries responses
// for this endpoint.
func (ce *ComputeEndpoint) AttachPort(p *llc.Port) {
	p.OnReceive = ce.handleResponse
}

func (ce *ComputeEndpoint) handleResponse(t *capi.Transaction) {
	if !t.IsResponse() {
		panic(fmt.Sprintf("endpoint: %s: request opcode %v on compute endpoint", ce.name, t.Op))
	}
	w, ok := ce.waiting[t.Tag]
	if !ok {
		return // response for a cancelled/unknown tag
	}
	delete(ce.waiting, t.Tag)
	// Egress through the compute-side attachment hardware before the CPU
	// sees the data.
	ce.k.Schedule(SideLatency, func() {
		w.resp = t
		w.sig.Broadcast()
	})
}

// Outstanding returns the number of requests issued but not yet completed.
// Detach-under-load drains an attachment by polling this in virtual time.
func (ce *ComputeEndpoint) Outstanding() int { return len(ce.waiting) }

// SetLinkDown marks the endpoint's datapath as fenced: every subsequent
// issue fails fast with ErrLinkDown instead of translating and forwarding
// into a dead link.
func (ce *ComputeEndpoint) SetLinkDown() { ce.linkDown = true }

// FaultOutstanding completes every outstanding request with err, waking its
// blocked issuer. Tags are faulted in sorted order so the wake-up sequence —
// and therefore the downstream event order — is deterministic regardless of
// map iteration order. Used by link-down escalation and forced detach.
func (ce *ComputeEndpoint) FaultOutstanding(err error) int {
	if len(ce.waiting) == 0 {
		return 0
	}
	tags := make([]uint32, 0, len(ce.waiting))
	for tag := range ce.waiting {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, tag := range tags {
		w := ce.waiting[tag]
		delete(ce.waiting, tag)
		w.err = err
		w.sig.Broadcast()
	}
	ce.faulted += int64(len(tags))
	return len(tags)
}

// issue translates and forwards one request, then blocks the calling
// process until the response arrives. It returns the response transaction.
func (ce *ComputeEndpoint) issue(p *sim.Proc, t *capi.Transaction) (*capi.Transaction, error) {
	if ce.linkDown {
		return nil, ErrLinkDown
	}
	if ce.lat != nil {
		// Attribution records are allocated per transaction on purpose: a
		// faulted issue can return while a late response still references
		// the record, so recycling would corrupt a live one. Only the
		// disabled path must be allocation-free.
		t.Lat = ce.lat.Start(ce.k.NowPS())
	}
	if err := ce.rmmu.Translate(t); err != nil {
		return nil, err
	}
	if t.Lat != nil {
		t.Lat.Flow = t.NetworkID
	}
	// The capi span covers the transaction's full round trip as the host
	// bus sees it: attachment ingress to response delivery.
	tr := ce.k.Tracer()
	var tok trace.SpanToken
	if tr != nil {
		tok = tr.Begin(trace.LayerCAPI, t.Op.String(), ce.k.NowPS())
	}
	ce.nextTag++
	t.Tag = ce.nextTag
	w := &pendingReq{sig: sim.NewSignal(ce.k)}
	ce.waiting[t.Tag] = w
	// Ingress through the compute-side attachment hardware.
	p.Sleep(SideLatency)
	if t.Lat != nil {
		t.Lat.MarkTo(latency.StageCapiCross, ce.k.NowPS())
	}
	if err := ce.router.ForwardFrom(p, t); err != nil {
		delete(ce.waiting, t.Tag)
		if tr != nil {
			tr.End(tok, ce.k.NowPS())
		}
		return nil, err
	}
	w.sig.Wait(p)
	if tr != nil {
		tr.End(tok, ce.k.NowPS())
	}
	if w.err != nil {
		return nil, w.err
	}
	// The response record is the one issued above when the round trip
	// stayed on a paired link; topologies that cannot carry the record
	// end-to-end deliver a bare response, which is simply not attributed.
	if ce.lat != nil && w.resp.Lat != nil {
		ce.lat.Done(w.resp.Lat, ce.k.NowPS())
		w.resp.Lat = nil
	}
	return w.resp, nil
}

// Load reads size bytes at the device-internal address, returning the data
// stored at the donor (nil when the donor region carries no backing store).
func (ce *ComputeEndpoint) Load(p *sim.Proc, deviceAddr uint64, size int32) ([]byte, error) {
	t := &capi.Transaction{Op: capi.OpReadReq, Addr: deviceAddr, Size: size}
	resp, err := ce.issue(p, t)
	if err != nil {
		return nil, err
	}
	ce.loads++
	return resp.Data, nil
}

// Store writes data at the device-internal address.
func (ce *ComputeEndpoint) Store(p *sim.Proc, deviceAddr uint64, data []byte) error {
	t := &capi.Transaction{Op: capi.OpWriteReq, Addr: deviceAddr, Size: int32(len(data)), Data: data}
	if _, err := ce.issue(p, t); err != nil {
		return err
	}
	ce.stores++
	return nil
}

// Stats returns completed (loads, stores).
func (ce *ComputeEndpoint) Stats() (loads, stores int64) { return ce.loads, ce.stores }

// Faulted returns the number of outstanding requests completed with an error
// by FaultOutstanding since creation.
func (ce *ComputeEndpoint) Faulted() int64 { return ce.faulted }
