package endpoint

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// StolenRegion is a pinned, cacheline-aligned span of donor memory exposed
// to a remote compute endpoint. Base is the donor-side effective address the
// RMMU offset points at. When backed (Data non-nil) the region carries real
// bytes so end-to-end functional tests can verify data integrity through the
// whole translation pipeline.
type StolenRegion struct {
	PASID uint32
	Base  uint64
	Size  int64
	Data  []byte
}

// contains reports whether [addr, addr+size) lies inside the region.
func (r *StolenRegion) contains(addr uint64, size int32) bool {
	return addr >= r.Base && addr+uint64(size) <= r.Base+uint64(r.Size)
}

// MemoryEndpoint is the donor-side device (C1 mode): it masters transactions
// into the donor's memory on behalf of remote compute endpoints. The
// endpoint is passive — it performs no translation and no routing; responses
// leave on the channel the request arrived from, carrying the network
// identifiers already present in the request header (Section IV-A2).
type MemoryEndpoint struct {
	k      *sim.Kernel
	name   string
	pasids *capi.PASIDRegistry

	regions []*StolenRegion
	c1      *sim.Pipe // 128B-transaction C1 ceiling (~16 GiB/s)
	dramLat sim.Time  // donor DRAM access latency behind the C1 master

	served   int64
	rejected int64
}

// NewMemory builds a memory-stealing endpoint. dramLat is the donor DRAM
// latency the C1 master experiences per access.
func NewMemory(k *sim.Kernel, name string, dramLat sim.Time) *MemoryEndpoint {
	return &MemoryEndpoint{
		k:       k,
		name:    name,
		pasids:  capi.NewPASIDRegistry(),
		c1:      sim.NewPipe(k, C1BytesPerSec),
		dramLat: dramLat,
	}
}

// Name returns the endpoint name.
func (me *MemoryEndpoint) Name() string { return me.name }

// C1Pipe exposes the C1 bandwidth pipe (shared with RemoteBackend so
// analytic and transaction-level traffic contend for the same ceiling).
func (me *MemoryEndpoint) C1Pipe() *sim.Pipe { return me.c1 }

// Steal pins size bytes of donor memory at the given donor effective
// address on behalf of process, registering its PASID with the endpoint
// hardware. With backing=true the region carries a real byte store.
func (me *MemoryEndpoint) Steal(process string, base uint64, size int64, backing bool) (*StolenRegion, error) {
	if size <= 0 || size%capi.Cacheline != 0 {
		return nil, fmt.Errorf("endpoint: steal size %d not cacheline aligned", size)
	}
	if base%capi.Cacheline != 0 {
		return nil, fmt.Errorf("endpoint: steal base %#x not cacheline aligned", base)
	}
	for _, r := range me.regions {
		if base < r.Base+uint64(r.Size) && r.Base < base+uint64(size) {
			return nil, fmt.Errorf("endpoint: steal [%#x,+%d) overlaps existing region", base, size)
		}
	}
	reg := &StolenRegion{
		PASID: me.pasids.Register(process),
		Base:  base,
		Size:  size,
	}
	if backing {
		reg.Data = make([]byte, size)
	}
	me.regions = append(me.regions, reg)
	return reg, nil
}

// Release unpins a stolen region and unregisters its PASID.
func (me *MemoryEndpoint) Release(reg *StolenRegion) error {
	for i, r := range me.regions {
		if r == reg {
			me.regions = append(me.regions[:i], me.regions[i+1:]...)
			me.pasids.Unregister(reg.PASID)
			return nil
		}
	}
	return fmt.Errorf("endpoint: release of unknown region")
}

// Regions returns the active stolen regions.
func (me *MemoryEndpoint) Regions() []*StolenRegion { return me.regions }

// AttachPort wires an LLC port's inbound traffic into this endpoint. The
// response is sent back on the same port.
func (me *MemoryEndpoint) AttachPort(p *llc.Port) {
	p.OnReceive = func(t *capi.Transaction) { me.handleRequest(p, t) }
}

func (me *MemoryEndpoint) handleRequest(port *llc.Port, t *capi.Transaction) {
	if t.IsResponse() {
		panic(fmt.Sprintf("endpoint: %s: response opcode %v on memory endpoint", me.name, t.Op))
	}
	reg := me.regionFor(t.Addr, t.Size)
	tr := me.k.Tracer()
	if reg == nil {
		// Illegal destination: the control plane never configures flows to
		// unpinned memory, so fail the transaction (Section IV-C).
		me.rejected++
		if tr != nil {
			tr.Instant(trace.LayerCAPI, "c1_reject", me.k.NowPS())
		}
		return
	}
	// The donor-side capi span covers the C1 master's service time:
	// request arrival to response leaving on the wire.
	var tok trace.SpanToken
	if tr != nil {
		name := "c1_read"
		if t.Op == capi.OpWriteReq {
			name = "c1_write"
		}
		tok = tr.Begin(trace.LayerCAPI, name, me.k.NowPS())
	}
	// Price the access: memory-side attachment ingress, the C1 master's
	// bandwidth ceiling, and donor DRAM.
	_, c1done := me.c1.Reserve(int64(t.Size))
	delay := SideLatency + (c1done - me.k.Now()) + me.dramLat
	if t.Lat != nil {
		// The whole donor-side delay is scheduled as one composite event, so
		// attribute its components by known duration rather than by stamp.
		t.Lat.Add(latency.StageC1Ingress, int64(SideLatency))
		t.Lat.Add(latency.StageC1Service, int64((c1done-me.k.Now())+me.dramLat))
	}
	me.k.Schedule(delay, func() {
		var data []byte
		if t.Op == capi.OpReadReq && reg.Data != nil {
			off := t.Addr - reg.Base
			data = append([]byte(nil), reg.Data[off:off+uint64(t.Size)]...)
		}
		if t.Op == capi.OpWriteReq && reg.Data != nil && t.Data != nil {
			off := t.Addr - reg.Base
			copy(reg.Data[off:], t.Data)
		}
		resp := t.Response(data)
		me.served++
		// Egress through the memory-side attachment hardware, then out on
		// the arrival channel.
		me.k.Schedule(SideLatency, func() {
			if tr != nil {
				tr.End(tok, me.k.NowPS())
			}
			if resp.Lat != nil {
				resp.Lat.Add(latency.StageC1Egress, int64(SideLatency))
			}
			port.Send(resp)
		})
	})
}

func (me *MemoryEndpoint) regionFor(addr uint64, size int32) *StolenRegion {
	for _, r := range me.regions {
		if r.contains(addr, size) {
			return r
		}
	}
	return nil
}

// Stats returns (served, rejected) transaction counts.
func (me *MemoryEndpoint) Stats() (served, rejected int64) { return me.served, me.rejected }
