package endpoint

import (
	"math"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// DatapathRTT is the hardware datapath flit round-trip latency of the
// prototype (Section V): four FPGA-stack crossings plus six serDES
// crossings, ~950 ns.
const DatapathRTT = 4*phy.FPGAStackCrossing + 6*phy.SerdesCrossing

// CongestionConfig models the efficiency loss of the network-facing stack
// near saturation (Section VI-C: "performance decreases because the network
// facing stack gets closer to the saturation threshold"). When the
// channel's committed backlog exceeds Window, a fraction of bandwidth is
// wasted on credit stalls and frame replays, reducing goodput.
type CongestionConfig struct {
	Window sim.Time // backlog above which overload waste kicks in
	Alpha  float64  // maximum fraction of bandwidth wasted at full overload
}

// DefaultCongestion matches the ~10% goodput decline the paper observes
// when moving from 8 to 16 STREAM threads on one channel. The window is
// sized so that the backlog of ~8 blocked streaming threads produces mild
// waste and ~16 threads substantially more, mirroring the Rx-queue credit
// pressure of the prototype.
func DefaultCongestion() CongestionConfig {
	return CongestionConfig{Window: 6 * sim.Millisecond, Alpha: 0.13}
}

// RemoteBackend is the mem.Backend adapter for a disaggregated NUMA node:
// it prices memory accesses through the ThymesisFlow datapath analytically
// (channel bandwidth, C1 ceiling, datapath RTT, donor DRAM) so that
// workload simulations do not pay per-cacheline event costs.
//
// Each channel pipe models the aggregate goodput of one 100 Gbit/s
// network-facing channel (12.5 GiB/s, the paper's "theoretical maximum"),
// shared by request and response traffic. Bonding adds channels in
// round-robin, while the donor-side C1 interface caps aggregate throughput
// at ~16 GiB/s for 128-byte transactions.
type RemoteBackend struct {
	k        *sim.Kernel
	name     string
	channels []*sim.Pipe
	c1       *sim.Pipe
	dramLat  sim.Time
	cong     CongestionConfig
	rr       int
	// hbm is the optional Section VII caching layer (see hbm.go).
	hbm *hbmCache
}

// NewRemoteBackend builds a backend over `channels` bonded network channels
// (1 = single-disaggregated, 2 = bonding-disaggregated). The c1 pipe may be
// shared with a MemoryEndpoint; pass nil to create a private one.
func NewRemoteBackend(k *sim.Kernel, name string, channels int, c1 *sim.Pipe, donorDRAMLat sim.Time) *RemoteBackend {
	if channels <= 0 {
		channels = 1
	}
	pipes := make([]*sim.Pipe, channels)
	for i := range pipes {
		pipes[i] = sim.NewPipe(k, phy.ChannelBytesPerSec)
	}
	return NewRemoteBackendWithPipes(k, name, pipes, c1, donorDRAMLat)
}

// NewRemoteBackendWithPipes builds a backend over caller-provided channel
// pipes, letting several active thymesisflows share the same physical
// channels (Section IV-A3) — their traffic then contends on the shared
// pipes exactly as it would on the shared wire.
func NewRemoteBackendWithPipes(k *sim.Kernel, name string, pipes []*sim.Pipe, c1 *sim.Pipe, donorDRAMLat sim.Time) *RemoteBackend {
	if len(pipes) == 0 {
		panic("endpoint: remote backend needs at least one channel pipe")
	}
	if c1 == nil {
		c1 = sim.NewPipe(k, C1BytesPerSec)
	}
	return &RemoteBackend{
		k:        k,
		name:     name,
		channels: pipes,
		c1:       c1,
		dramLat:  donorDRAMLat,
		cong:     DefaultCongestion(),
	}
}

// SetCongestion overrides the congestion model (ablation benches).
func (b *RemoteBackend) SetCongestion(c CongestionConfig) { b.cong = c }

// Name implements mem.Backend.
func (b *RemoteBackend) Name() string { return b.name }

// BaseLatency implements mem.Backend: datapath RTT plus donor DRAM.
func (b *RemoteBackend) BaseLatency() sim.Time { return DatapathRTT + b.dramLat }

// StreamBandwidth implements mem.Backend.
func (b *RemoteBackend) StreamBandwidth() float64 {
	total := 0.0
	for _, ch := range b.channels {
		total += ch.Rate()
	}
	return math.Min(total, b.c1.Rate())
}

// inflate applies the congestion waste factor for a transfer on channel ch.
func (b *RemoteBackend) inflate(ch *sim.Pipe, n int64) int64 {
	if b.cong.Alpha <= 0 || b.cong.Window <= 0 {
		return n
	}
	overload := float64(ch.Backlog()) / float64(b.cong.Window)
	if overload > 1 {
		overload = 1
	}
	waste := b.cong.Alpha * overload
	return int64(float64(n) * (1 + waste))
}

// reserve books n bytes across the bonded channels (round-robin start, then
// splitting evenly) and on the C1 interface; it returns the completion time.
func (b *RemoteBackend) reserve(n int64) sim.Time {
	var done sim.Time
	if len(b.channels) == 1 {
		ch := b.channels[0]
		_, d := ch.Reserve(b.inflate(ch, n))
		done = d
	} else {
		per := n / int64(len(b.channels))
		rem := n - per*int64(len(b.channels))
		for i := range b.channels {
			ch := b.channels[(b.rr+i)%len(b.channels)]
			part := per
			if i == 0 {
				part += rem
			}
			if part == 0 {
				continue
			}
			_, d := ch.Reserve(b.inflate(ch, part))
			if d > done {
				done = d
			}
		}
		b.rr++
	}
	_, c1done := b.c1.Reserve(n)
	if c1done > done {
		done = c1done
	}
	return done
}

// BondReorderPenalty is the extra demand-access latency per additional
// bonded channel: responses of one flow returning on different channels
// must be re-sequenced at the compute endpoint, which costs latency even
// though bonding raises bandwidth. This is why the paper's
// bonding-disaggregated configuration shows slightly worse Memcached tail
// latency than single-disaggregated (Figure 8) while winning on STREAM.
const BondReorderPenalty = 300 * sim.Nanosecond

// Access implements mem.Backend: a demand miss pays the full datapath RTT,
// donor DRAM, plus any queueing on the channels and C1 interface.
func (b *RemoteBackend) Access(size int64, write bool) sim.Time {
	if size <= 0 {
		return 0
	}
	done := b.reserve(size)
	lat := (done - b.k.Now()) + DatapathRTT + b.dramLat
	if n := len(b.channels); n > 1 {
		lat += sim.Time(n-1) * BondReorderPenalty
	}
	return lat
}

// ReserveStream implements mem.Backend: bulk transfers pay bandwidth (with
// congestion waste) but hide the RTT behind prefetch pipelining.
func (b *RemoteBackend) ReserveStream(n int64) sim.Time {
	if n <= 0 {
		return b.k.Now()
	}
	return b.reserve(n)
}

// Channels exposes the channel pipes for statistics.
func (b *RemoteBackend) Channels() []*sim.Pipe { return b.channels }

var _ mem.Backend = (*RemoteBackend)(nil)
