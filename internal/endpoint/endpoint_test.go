package endpoint

import (
	"bytes"
	"testing"

	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// rig wires one compute endpoint to one memory endpoint over a single
// bidirectional channel and maps one section.
type rig struct {
	k  *sim.Kernel
	ce *ComputeEndpoint
	me *MemoryEndpoint
	// region stolen at the donor
	reg *StolenRegion
}

func newRig(t *testing.T, faults phy.FaultConfig) *rig {
	t.Helper()
	k := sim.NewKernel()
	ce, err := NewCompute(k, "compute0", 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	me := NewMemory(k, "memory0", 90*sim.Nanosecond)

	link := phy.NewLink(k, "wire0", phy.LanesPerChannel, phy.SerdesCrossing, faults)
	cPort, mPort := llc.NewPair(k, "llc0", link, llc.DefaultConfig())
	ce.AttachPort(cPort)
	me.AttachPort(mPort)

	reg, err := me.Steal("stealer", 0x10000000, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RMMU().Map(0, reg.Base, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := ce.Router().AddFlow(1, cPort); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, ce: ce, me: me, reg: reg}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	r := newRig(t, phy.FaultConfig{})
	want := make([]byte, 128)
	for i := range want {
		want[i] = byte(i * 3)
	}
	var got []byte
	r.k.Go("app", func(p *sim.Proc) {
		if err := r.ce.Store(p, 0x340*128, want); err != nil {
			t.Error(err)
			return
		}
		data, err := r.ce.Load(p, 0x340*128, 128)
		if err != nil {
			t.Error(err)
			return
		}
		got = data
	})
	r.k.RunUntil(sim.Millisecond)
	if !bytes.Equal(got, want) {
		t.Fatalf("data corrupted through the datapath: got %v", got[:8])
	}
	if loads, stores := r.ce.Stats(); loads != 1 || stores != 1 {
		t.Fatalf("stats loads=%d stores=%d", loads, stores)
	}
}

func TestDataSurvivesLossyLink(t *testing.T) {
	r := newRig(t, phy.FaultConfig{DropProb: 0.05, CorruptProb: 0.05, Seed: 21})
	ok := false
	r.k.Go("app", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte{0xAB}, 128)
		for i := 0; i < 50; i++ {
			addr := uint64(i) * 128
			if err := r.ce.Store(p, addr, payload); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 50; i++ {
			addr := uint64(i) * 128
			data, err := r.ce.Load(p, addr, 128)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(data, payload) {
				t.Errorf("data at %#x corrupted", addr)
				return
			}
		}
		ok = true
	})
	r.k.RunUntil(100 * sim.Millisecond)
	if !ok {
		t.Fatal("workload did not complete over lossy link")
	}
}

func TestReadLatencyMatchesDatapathRTT(t *testing.T) {
	r := newRig(t, phy.FaultConfig{})
	var lat sim.Time
	r.k.Go("app", func(p *sim.Proc) {
		start := p.Now()
		if _, err := r.ce.Load(p, 0, 128); err != nil {
			t.Error(err)
		}
		lat = p.Now() - start
	})
	r.k.RunUntil(sim.Millisecond)
	// Datapath RTT (950ns) + donor DRAM (90ns) + serialization/framing.
	if lat < DatapathRTT {
		t.Fatalf("load latency %v below the 950ns datapath RTT", lat)
	}
	if lat > DatapathRTT+300*sim.Nanosecond {
		t.Fatalf("load latency %v too far above 950ns + DRAM", lat)
	}
}

func TestUnmappedSectionRejected(t *testing.T) {
	r := newRig(t, phy.FaultConfig{})
	r.k.Go("app", func(p *sim.Proc) {
		if _, err := r.ce.Load(p, 3<<20, 128); err == nil {
			t.Error("load through unmapped section succeeded")
		}
	})
	r.k.RunUntil(sim.Millisecond)
}

func TestIllegalDonorAddressRejected(t *testing.T) {
	// Map a second section whose donor base points outside any stolen
	// region: the memory endpoint must reject the transaction.
	r := newRig(t, phy.FaultConfig{})
	if err := r.ce.RMMU().Map(1, 0x40000000, 1, false); err != nil {
		t.Fatal(err)
	}
	r.k.Go("app", func(p *sim.Proc) {
		r.ce.Store(p, 1<<20, bytes.Repeat([]byte{1}, 128)) // parks forever
	})
	r.k.RunUntil(5 * sim.Millisecond)
	if _, rejected := r.me.Stats(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
}

func TestStealValidation(t *testing.T) {
	k := sim.NewKernel()
	me := NewMemory(k, "m", 90*sim.Nanosecond)
	if _, err := me.Steal("p", 0x1000, 100, false); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := me.Steal("p", 0x1001, 1<<20, false); err == nil {
		t.Fatal("unaligned base accepted")
	}
	r1, err := me.Steal("p", 0x100000, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Steal("q", 0x180000, 1<<20, false); err == nil {
		t.Fatal("overlapping steal accepted")
	}
	if err := me.Release(r1); err != nil {
		t.Fatal(err)
	}
	if err := me.Release(r1); err == nil {
		t.Fatal("double release accepted")
	}
	if _, err := me.Steal("q", 0x180000, 1<<20, false); err != nil {
		t.Fatalf("steal after release failed: %v", err)
	}
}

func TestRemoteBackendLatency(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	lat := b.Access(128, false)
	want := DatapathRTT + 90*sim.Nanosecond
	if lat < want || lat > want+50*sim.Nanosecond {
		t.Fatalf("unloaded access latency %v, want ~%v", lat, want)
	}
	if b.BaseLatency() != want {
		t.Fatalf("base latency %v", b.BaseLatency())
	}
}

func TestRemoteBackendBandwidthCaps(t *testing.T) {
	k := sim.NewKernel()
	single := NewRemoteBackend(k, "tf1", 1, nil, 90*sim.Nanosecond)
	if bw := single.StreamBandwidth(); bw != phy.ChannelBytesPerSec {
		t.Fatalf("single-channel bw = %v, want %v", bw, float64(phy.ChannelBytesPerSec))
	}
	bonded := NewRemoteBackend(k, "tf2", 2, nil, 90*sim.Nanosecond)
	// Two channels would give 25 GiB/s but the C1 ceiling is 16 GiB/s.
	if bw := bonded.StreamBandwidth(); bw != C1BytesPerSec {
		t.Fatalf("bonded bw = %v, want C1 ceiling %v", bw, float64(C1BytesPerSec))
	}
}

func TestRemoteBackendCongestionWaste(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 1, nil, 90*sim.Nanosecond)
	// Build a deep backlog, then measure marginal goodput: it must fall
	// below the clean channel rate by roughly Alpha.
	const chunk = 1 << 20
	for i := 0; i < 200; i++ {
		b.ReserveStream(chunk)
	}
	before := b.ReserveStream(chunk)
	after := b.ReserveStream(chunk)
	marginal := float64(chunk) / (after - before).Seconds()
	clean := float64(phy.ChannelBytesPerSec)
	if marginal > clean*0.92 {
		t.Fatalf("marginal goodput %.3g under overload, want < 0.92 of %.3g", marginal, clean)
	}
	if marginal < clean*0.8 {
		t.Fatalf("congestion waste too aggressive: %.3g", marginal)
	}
}

func TestRemoteBackendBondedSplitsLoad(t *testing.T) {
	k := sim.NewKernel()
	b := NewRemoteBackend(k, "tf", 2, nil, 90*sim.Nanosecond)
	b.ReserveStream(2 << 20)
	chs := b.Channels()
	if chs[0].TotalBytes() == 0 || chs[1].TotalBytes() == 0 {
		t.Fatalf("bonded stream not split: %d/%d", chs[0].TotalBytes(), chs[1].TotalBytes())
	}
	diff := chs[0].TotalBytes() - chs[1].TotalBytes()
	if diff < 0 {
		diff = -diff
	}
	if diff > 1<<10 {
		t.Fatalf("bonded split unbalanced: %d/%d", chs[0].TotalBytes(), chs[1].TotalBytes())
	}
}
