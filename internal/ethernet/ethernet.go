// Package ethernet models the conventional packet network of the testbed
// (Section VI-A): 100 Gb/s Ethernet between the two server nodes for the
// scale-out configuration, and 10 Gb/s Ethernet from the client machine to
// the servers. It prices message exchanges (serialization + propagation +
// protocol stack overhead) rather than simulating packets individually.
package ethernet

import (
	"thymesisflow/internal/sim"
)

// Gbps converts gigabits/sec to bytes/sec.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Conn is a bidirectional connection between two endpoints with a shared
// serialization pipe per direction.
type Conn struct {
	k      *sim.Kernel
	name   string
	ab, ba *sim.Pipe
	// PropDelay is the one-way propagation latency.
	PropDelay sim.Time
	// StackOverhead is the per-message software cost (NIC + kernel network
	// stack + TCP) paid on each side of a send.
	StackOverhead sim.Time
}

// New builds a connection at the given line rate.
func New(k *sim.Kernel, name string, bytesPerSec float64, propDelay, stackOverhead sim.Time) *Conn {
	return &Conn{
		k:             k,
		name:          name,
		ab:            sim.NewPipe(k, bytesPerSec),
		ba:            sim.NewPipe(k, bytesPerSec),
		PropDelay:     propDelay,
		StackOverhead: stackOverhead,
	}
}

// DefaultServerLink is the 100 Gb/s server-to-server link of the testbed.
func DefaultServerLink(k *sim.Kernel, name string) *Conn {
	return New(k, name, Gbps(100), 2*sim.Microsecond, 5*sim.Microsecond)
}

// DefaultClientLink is the 10 Gb/s client-to-server link of the testbed.
func DefaultClientLink(k *sim.Kernel, name string) *Conn {
	return New(k, name, Gbps(10), 10*sim.Microsecond, 8*sim.Microsecond)
}

// Send transmits n bytes from the A side toward B, blocking the caller for
// the full delivery latency (send stack + serialization + propagation +
// receive stack).
func (c *Conn) Send(p *sim.Proc, n int64) {
	c.transfer(p, c.ab, n)
}

// SendReverse transmits from the B side toward A.
func (c *Conn) SendReverse(p *sim.Proc, n int64) {
	c.transfer(p, c.ba, n)
}

func (c *Conn) transfer(p *sim.Proc, pipe *sim.Pipe, n int64) {
	if n <= 0 {
		n = 1
	}
	_, done := pipe.Reserve(n)
	wait := (done - p.Now()) + c.PropDelay + 2*c.StackOverhead
	p.Sleep(wait)
}

// RoundTrip prices a request/response exchange: request of reqBytes one
// way, response of respBytes back, plus remote service time handled by the
// caller in between if needed.
func (c *Conn) RoundTrip(p *sim.Proc, reqBytes, respBytes int64) {
	c.Send(p, reqBytes)
	c.SendReverse(p, respBytes)
}

// Throughput returns achieved bytes/sec in the A-to-B direction since the
// start of the simulation.
func (c *Conn) Throughput() float64 { return c.ab.Throughput() }
