package ethernet

import (
	"testing"

	"thymesisflow/internal/sim"
)

func TestGbps(t *testing.T) {
	if Gbps(100) != 12.5e9 {
		t.Fatalf("100 Gb/s = %v B/s", Gbps(100))
	}
}

func TestSendLatencyComposition(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, "t", 1e9, 5*sim.Microsecond, 2*sim.Microsecond)
	var took sim.Time
	k.Go("tx", func(p *sim.Proc) {
		start := p.Now()
		c.Send(p, 1000) // 1 us serialization at 1 GB/s
		took = p.Now() - start
	})
	k.Run()
	// serialization (1us) + prop (5us) + 2x stack (4us) = 10us
	want := 10 * sim.Microsecond
	if took != want {
		t.Fatalf("send took %v, want %v", took, want)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, "t", 1e9, 0, 0)
	var fwd, rev sim.Time
	k.Go("a", func(p *sim.Proc) {
		c.Send(p, 1_000_000)
		fwd = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		c.SendReverse(p, 1_000_000)
		rev = p.Now()
	})
	k.Run()
	// Full duplex: both directions complete in ~1ms, not 2ms.
	if fwd > 1100*sim.Microsecond || rev > 1100*sim.Microsecond {
		t.Fatalf("directions serialized: fwd=%v rev=%v", fwd, rev)
	}
}

func TestSameDirectionContends(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, "t", 1e9, 0, 0)
	var last sim.Time
	for i := 0; i < 2; i++ {
		k.Go("tx", func(p *sim.Proc) {
			c.Send(p, 1_000_000)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	// Two 1ms transfers share one direction: the second finishes at ~2ms.
	if last < 1900*sim.Microsecond {
		t.Fatalf("same-direction transfers did not contend: last=%v", last)
	}
}

func TestRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	c := DefaultClientLink(k, "client")
	var took sim.Time
	k.Go("rt", func(p *sim.Proc) {
		start := p.Now()
		c.RoundTrip(p, 100, 1000)
		took = p.Now() - start
	})
	k.Run()
	// 2x (prop 10us + 2x stack 8us) plus tiny serialization: ~52us.
	if took < 50*sim.Microsecond || took > 60*sim.Microsecond {
		t.Fatalf("client round trip = %v, want ~52us", took)
	}
}

func TestThroughputAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, "t", 1e9, 0, 0)
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.Send(p, 100_000)
		}
	})
	k.Run()
	if tp := c.Throughput(); tp < 0.9e9 || tp > 1.1e9 {
		t.Fatalf("throughput = %v, want ~1e9", tp)
	}
}

func TestZeroByteMessageStillCosts(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, "t", 1e9, sim.Microsecond, sim.Microsecond)
	var took sim.Time
	k.Go("tx", func(p *sim.Proc) {
		c.Send(p, 0)
		took = p.Now()
	})
	k.Run()
	if took < 3*sim.Microsecond {
		t.Fatalf("zero-byte send took %v, want at least prop+stacks", took)
	}
}
