package llc

import (
	"testing"
	"testing/quick"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// Property: for any loss/corruption seed and moderate loss rates, every
// transaction is delivered exactly once and in order — the LLC makes the
// channel lossless.
func TestQuickLosslessDelivery(t *testing.T) {
	f := func(seed int64, lossPct, corruptPct uint8) bool {
		loss := float64(lossPct%20) / 100 // 0..19%
		corrupt := float64(corruptPct%20) / 100
		k := sim.NewKernel()
		link := phy.NewLink(k, "l", phy.LanesPerChannel, 50*sim.Nanosecond,
			phy.FaultConfig{DropProb: loss, CorruptProb: corrupt, Seed: seed})
		a, b := NewPair(k, "p", link, DefaultConfig())
		var got []uint32
		b.OnReceive = func(txn *capi.Transaction) { got = append(got, txn.Tag) }
		const n = 80
		k.Go("tx", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				a.SendFrom(p, &capi.Transaction{
					Op: capi.OpReadReq, Addr: uint64(i) * 128, Size: 128, Tag: uint32(i),
				})
				p.Sleep(40 * sim.Nanosecond)
			}
		})
		k.RunUntil(sim.Second)
		if len(got) != n {
			return false
		}
		for i, tag := range got {
			if tag != uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: frame encode length is always the fixed wire size, and decode
// of any single-bit-flipped frame either errors or (for flips inside pad
// bytes that cancel) never mis-parses silently into different content.
func TestQuickBitFlipDetected(t *testing.T) {
	f := func(addr uint64, tag uint32, flipByte uint16, flipBit uint8) bool {
		fr := &Frame{Kind: kindData, Seq: 9, Txns: []*capi.Transaction{
			{Op: capi.OpReadReq, Addr: addr, Size: 128, Tag: tag},
		}}
		wire := fr.Encode()
		if len(wire) != FrameBytes {
			return false
		}
		mut := append([]byte(nil), wire...)
		pos := int(flipByte) % len(mut)
		mut[pos] ^= 1 << (flipBit % 8)
		_, err := Decode(mut)
		return err == ErrCRC // single-bit flips are always caught by CRC-32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	link := phy.NewLink(k, "l", phy.LanesPerChannel, 0, phy.FaultConfig{})
	for _, bad := range []Config{
		{Credits: 0, ReplayBuffer: 8, ReplayTimeout: sim.Microsecond},
		{Credits: 8, ReplayBuffer: 0, ReplayTimeout: sim.Microsecond},
		{Credits: 8, ReplayBuffer: 8, ReplayTimeout: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			NewPair(k, "p", link, bad)
		}()
	}
}
