package llc

import (
	"fmt"
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

func newTestPair(k *sim.Kernel, faults phy.FaultConfig, cfg Config) (*Port, *Port) {
	link := phy.NewLink(k, "test", phy.LanesPerChannel, 100*sim.Nanosecond, faults)
	return NewPair(k, "llc", link, cfg)
}

func readReq(tag uint32) *capi.Transaction {
	return &capi.Transaction{Op: capi.OpReadReq, Addr: uint64(tag) * 128, Size: 128, Tag: tag}
}

func TestPortDeliversInOrder(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	var got []uint32
	b.OnReceive = func(txn *capi.Transaction) { got = append(got, txn.Tag) }
	const n = 100
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(readReq(uint32(i)))
			p.Sleep(10 * sim.Nanosecond)
		}
	})
	k.RunUntil(sim.Millisecond)
	if len(got) != n {
		t.Fatalf("delivered %d transactions, want %d", len(got), n)
	}
	for i, tag := range got {
		if tag != uint32(i) {
			t.Fatalf("out-of-order delivery at %d: %v", i, got[:i+1])
		}
	}
}

func TestPortRecoversFromFrameLoss(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{DropProb: 0.10, Seed: 7}, DefaultConfig())
	var got []uint32
	b.OnReceive = func(txn *capi.Transaction) { got = append(got, txn.Tag) }
	const n = 500
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.SendFrom(p, readReq(uint32(i)))
			p.Sleep(20 * sim.Nanosecond)
		}
	})
	k.RunUntil(50 * sim.Millisecond)
	if len(got) != n {
		t.Fatalf("delivered %d transactions under loss, want %d (stats a=%+v b=%+v)",
			len(got), n, a.Stats(), b.Stats())
	}
	for i, tag := range got {
		if tag != uint32(i) {
			t.Fatalf("order violated under loss at %d", i)
		}
	}
	if a.Stats().TxReplayed == 0 {
		t.Fatal("no frames were replayed despite 10% loss")
	}
}

func TestPortRecoversFromCorruption(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{CorruptProb: 0.10, Seed: 3}, DefaultConfig())
	var got int
	b.OnReceive = func(*capi.Transaction) { got++ }
	const n = 400
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.SendFrom(p, readReq(uint32(i)))
			p.Sleep(20 * sim.Nanosecond)
		}
	})
	k.RunUntil(50 * sim.Millisecond)
	if got != n {
		t.Fatalf("delivered %d under corruption, want %d", got, n)
	}
	if b.Stats().RxCRCErrors == 0 {
		t.Fatal("expected CRC errors with corruption injection")
	}
}

func TestPortNoDuplicateDeliveryUnderReplay(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{DropProb: 0.25, Seed: 11}, DefaultConfig())
	seen := make(map[uint32]int)
	b.OnReceive = func(txn *capi.Transaction) { seen[txn.Tag]++ }
	const n = 200
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.SendFrom(p, readReq(uint32(i)))
			p.Sleep(50 * sim.Nanosecond)
		}
	})
	k.RunUntil(100 * sim.Millisecond)
	for tag, count := range seen {
		if count != 1 {
			t.Fatalf("transaction %d delivered %d times", tag, count)
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct transactions, want %d", len(seen), n)
	}
}

func TestPortCreditBackpressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Credits = 8
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	var got int
	b.OnReceive = func(*capi.Transaction) { got++ }
	// Burst far more than the credit window in one instant.
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			a.Send(readReq(uint32(i)))
		}
	})
	k.RunUntil(sim.Millisecond)
	if got != 100 {
		t.Fatalf("delivered %d, want 100 (credits must recycle)", got)
	}
	if a.Credits() != cfg.Credits {
		t.Fatalf("credits = %d after drain, want %d", a.Credits(), cfg.Credits)
	}
}

func TestPortCreditsNeverExceedLimit(t *testing.T) {
	// The panic inside handleControl guards the invariant; this test drives
	// enough traffic to exercise many credit-return frames.
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Credits = 16
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	b.OnReceive = func(*capi.Transaction) {}
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			a.SendFrom(p, readReq(uint32(i)))
			if i%7 == 0 {
				p.Sleep(100 * sim.Nanosecond)
			}
		}
	})
	k.RunUntil(10 * sim.Millisecond)
	if a.Stats().TxTransactions != 300 {
		t.Fatalf("sent %d, want 300", a.Stats().TxTransactions)
	}
}

func TestPortBidirectional(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	var gotA, gotB int
	a.OnReceive = func(*capi.Transaction) { gotA++ }
	b.OnReceive = func(*capi.Transaction) { gotB++ }
	k.Go("txA", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			a.Send(readReq(uint32(i)))
			p.Sleep(15 * sim.Nanosecond)
		}
	})
	k.Go("txB", func(p *sim.Proc) {
		for i := 0; i < 70; i++ {
			b.Send(readReq(uint32(1000 + i)))
			p.Sleep(15 * sim.Nanosecond)
		}
	})
	k.RunUntil(sim.Millisecond)
	if gotB != 50 || gotA != 70 {
		t.Fatalf("bidirectional delivery gotA=%d gotB=%d, want 70/50", gotA, gotB)
	}
}

func TestPortPadsIncompleteFrames(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	b.OnReceive = func(*capi.Transaction) {}
	k.Go("tx", func(p *sim.Proc) {
		a.Send(readReq(1)) // a single 1-flit transaction in a 16-flit frame
	})
	k.RunUntil(sim.Millisecond)
	if pad := a.Stats().PaddingFlits; pad != FrameFlits-1 {
		t.Fatalf("padding flits = %d, want %d", pad, FrameFlits-1)
	}
}

func TestPortLatencyIncludesCrossings(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	var deliveredAt sim.Time
	b.OnReceive = func(*capi.Transaction) { deliveredAt = k.Now() }
	k.Go("tx", func(p *sim.Proc) { a.Send(readReq(1)) })
	k.RunUntil(sim.Millisecond)
	// One-way: serialization of 512 B at 12.5 GiB/s (~38ns) + 100ns crossing.
	if deliveredAt < 100*sim.Nanosecond || deliveredAt > 250*sim.Nanosecond {
		t.Fatalf("one-way delivery at %v, want ~138ns", deliveredAt)
	}
}

// Stress determinism: two identical runs must produce identical stats.
func TestPortDeterminism(t *testing.T) {
	run := func() string {
		k := sim.NewKernel()
		a, b := newTestPair(k, phy.FaultConfig{DropProb: 0.05, CorruptProb: 0.05, Seed: 99}, DefaultConfig())
		b.OnReceive = func(*capi.Transaction) {}
		k.Go("tx", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				a.SendFrom(p, readReq(uint32(i)))
				p.Sleep(30 * sim.Nanosecond)
			}
		})
		end := k.RunUntil(100 * sim.Millisecond)
		return fmt.Sprintf("%v %+v %+v", end, a.Stats(), b.Stats())
	}
	if run() != run() {
		t.Fatal("simulation is nondeterministic")
	}
}
