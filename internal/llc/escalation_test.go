package llc

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// TestTxReplayExhaustionEscalates kills the forward channel entirely: the
// transmitter must retransmit MaxReplayAttempts times, then fence the link
// and notify the upper layer instead of retrying forever.
func TestTxReplayExhaustionEscalates(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	b.OnReceive = func(*capi.Transaction) {}
	notified := false
	a.OnLinkDown = func() { notified = true }
	a.Channel().SetFaults(phy.FaultConfig{DropProb: 1})
	k.Go("tx", func(p *sim.Proc) { a.Send(readReq(1)) })
	k.RunUntil(5 * sim.Millisecond)
	if !a.Down() {
		t.Fatalf("port not down after dead link (stats %+v)", a.Stats())
	}
	if !notified {
		t.Fatal("OnLinkDown not invoked")
	}
	st := a.Stats()
	if st.ReplayExhausted != 1 || st.LinkDownEvents != 1 {
		t.Fatalf("escalation counters = %+v", st)
	}
	if st.TxReplayed != int64(cfg.MaxReplayAttempts) {
		t.Fatalf("TxReplayed = %d, want %d", st.TxReplayed, cfg.MaxReplayAttempts)
	}
	// Further sends on a down port are abandoned, not queued.
	k.Go("tx2", func(p *sim.Proc) { a.Send(readReq(2)) })
	k.RunUntil(6 * sim.Millisecond)
	if a.Stats().TxAbandoned == 0 {
		t.Fatal("send on a down port was not counted as abandoned")
	}
}

// TestRxReplayStallEscalates starves the receiver of a requested replay:
// a forged out-of-order frame opens a gap the peer can never fill, so the
// receive side must eventually declare the link dead.
func TestRxReplayStallEscalates(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	a.OnReceive = func(*capi.Transaction) {}
	b.OnReceive = func(*capi.Transaction) {}
	_ = a
	// Inject a frame far ahead of b's expected sequence; a has nothing in
	// its replay buffer, so b's replay requests can make no progress.
	f := &Frame{Kind: kindData, Seq: 5, Txns: []*capi.Transaction{readReq(9)}}
	wire := f.Encode()
	k.Go("inject", func(p *sim.Proc) {
		b.Deliver(phy.Delivery{Payload: wire, Bytes: len(wire)})
	})
	k.RunUntil(5 * sim.Millisecond)
	if !b.Down() {
		t.Fatalf("receiver not down after unanswerable gap (stats %+v)", b.Stats())
	}
	st := b.Stats()
	if st.ReplayExhausted != 1 || st.LinkDownEvents != 1 {
		t.Fatalf("escalation counters = %+v", st)
	}
	if st.RxGaps == 0 {
		t.Fatal("gap was not detected")
	}
}

// TestCreditProbeRepairsLostReturns drops every reverse-direction frame for
// a window long enough to lose several credit returns, then heals the link:
// the transmitter's probe cycle must recover the lost credits and drain all
// traffic with credits conserved.
func TestCreditProbeRepairsLostReturns(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Credits = 4
	cfg.ReplayBuffer = 8
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	got := 0
	b.OnReceive = func(*capi.Transaction) { got++ }
	// Reverse channel (b's outbound) black-holes all credit returns for
	// 100 us — well under the escalation budget of MaxReplayAttempts
	// probe timeouts.
	b.Channel().SetSchedule(phy.FaultSchedule{
		Windows: []phy.Window{{From: 0, To: 100 * sim.Microsecond, DropProb: 1}},
	})
	const n = 20
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(readReq(uint32(i)))
		}
	})
	k.RunUntil(10 * sim.Millisecond)
	if got != n {
		t.Fatalf("delivered %d, want %d (stats a=%+v)", got, n, a.Stats())
	}
	if a.Credits() != cfg.Credits {
		t.Fatalf("credits = %d after drain, want %d (conservation)", a.Credits(), cfg.Credits)
	}
	st := a.Stats()
	if st.CreditProbes == 0 {
		t.Fatal("no credit probes sent despite lost returns")
	}
	if st.LinkDownEvents != 0 {
		t.Fatalf("spurious escalation: %+v", st)
	}
}

// TestCreditStarvationEscalates black-holes the reverse channel forever:
// the probe cycle must exhaust its attempts and fence the link rather than
// stalling silently with pending traffic.
func TestCreditStarvationEscalates(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Credits = 4
	cfg.ReplayBuffer = 8
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	b.OnReceive = func(*capi.Transaction) {}
	b.Channel().SetFaults(phy.FaultConfig{DropProb: 1})
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			a.Send(readReq(uint32(i)))
		}
	})
	k.RunUntil(10 * sim.Millisecond)
	if !a.Down() {
		t.Fatalf("transmitter not down after permanent starvation (stats %+v)", a.Stats())
	}
	st := a.Stats()
	if st.CreditProbes != int64(cfg.MaxReplayAttempts) {
		t.Fatalf("CreditProbes = %d, want %d", st.CreditProbes, cfg.MaxReplayAttempts)
	}
	if st.TxAbandoned == 0 {
		t.Fatal("pending transactions were not abandoned on escalation")
	}
}

// TestSendFromReleasedOnLinkDown verifies that a process stalled on credits
// is released (with its transaction abandoned) when the port escalates,
// instead of blocking forever.
func TestSendFromReleasedOnLinkDown(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Credits = 2
	cfg.ReplayBuffer = 4
	a, b := newTestPair(k, phy.FaultConfig{}, cfg)
	b.OnReceive = func(*capi.Transaction) {}
	b.Channel().SetFaults(phy.FaultConfig{DropProb: 1}) // no credit returns ever
	returned := false
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			a.SendFrom(p, readReq(uint32(i)))
		}
		returned = true
	})
	k.RunUntil(20 * sim.Millisecond)
	if !a.Down() {
		t.Fatalf("port not down (stats %+v)", a.Stats())
	}
	if !returned {
		t.Fatal("SendFrom caller still blocked after link-down")
	}
}

// TestReplayBufferSmallerThanCreditsRejected pins the config invariant that
// makes replay-window overflow unreachable.
func TestReplayBufferSmallerThanCreditsRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("config with ReplayBuffer < Credits accepted")
		}
	}()
	k := sim.NewKernel()
	link := phy.NewLink(k, "bad", phy.LanesPerChannel, 0, phy.FaultConfig{})
	NewPair(k, "llc", link, Config{Credits: 16, ReplayBuffer: 8, ReplayTimeout: sim.Microsecond})
}
