package llc

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"thymesisflow/internal/capi"
)

// FuzzDecode drives Decode with arbitrary byte strings — including inputs
// re-sealed with a valid CRC so the header parser itself is exercised. It
// must never panic: a misbehaving fabric element can hand the receiver any
// bytes it likes.
func FuzzDecode(f *testing.F) {
	good := &Frame{Kind: kindData, Seq: 3, Txns: []*capi.Transaction{
		{Op: capi.OpReadReq, Addr: 0x1000, Size: 128, Tag: 7},
		{Op: capi.OpWriteReq, Addr: 0x2000, Size: 64, Tag: 8, Data: make([]byte, 64)},
	}}
	f.Add(good.Encode())
	ctrl := &Frame{Kind: kindControl, ReplayValid: true, ReplayFrom: 5, CumFreed: 3, Probe: true, CumAck: 4}
	f.Add(ctrl.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	// A forged header with an absurd transaction count, sealed with a
	// valid CRC.
	forged := make([]byte, FrameBytes-4)
	forged[0] = byte(kindData)
	binary.LittleEndian.PutUint16(forged[9:], 0xFFFF)
	forged = binary.LittleEndian.AppendUint32(forged, crc32.ChecksumIEEE(forged))
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		// Successfully decoded frames must be internally consistent.
		for _, txn := range fr.Txns {
			if txn.Size < 0 || txn.Size > capi.Cacheline {
				t.Fatalf("decoded transaction with size %d", txn.Size)
			}
			if txn.Data != nil && int32(len(txn.Data)) != txn.Size {
				t.Fatalf("data length %d != size %d", len(txn.Data), txn.Size)
			}
		}
	})
}

// FuzzDecodeCorrupted models the chaos campaign's wire faults at the unit
// level: it starts from valid encoded frames and applies the corruptions a
// lossy link produces — truncation, single-byte damage, and damage re-sealed
// with a recomputed CRC (a forged-but-checksummed frame). Decode must never
// panic; un-resealed damage to a full-length frame must be caught by the
// CRC; and any frame that does decode must re-encode to a byte-identical
// wire image.
func FuzzDecodeCorrupted(f *testing.F) {
	seeds := [][]byte{
		(&Frame{Kind: kindData, Seq: 9, Txns: []*capi.Transaction{
			{Op: capi.OpWriteReq, Addr: 0x4000, Size: 128, Tag: 1, Data: make([]byte, 128)},
		}}).Encode(),
		(&Frame{Kind: kindData, Seq: 10, Txns: []*capi.Transaction{
			{Op: capi.OpReadResp, Addr: 0x80, Size: 128, Tag: 2, Data: make([]byte, 128)},
			{Op: capi.OpNop},
		}}).Encode(),
		(&Frame{Kind: kindControl, ReplayValid: true, ReplayFrom: 17, CumFreed: 41, CumAck: 16}).Encode(),
		(&Frame{Kind: kindControl, Probe: true, CumFreed: 7, CumAck: 7}).Encode(),
	}
	for i := range seeds {
		f.Add(i, uint16(FrameBytes), uint16(i*13), byte(1<<i), false)
		f.Add(i, uint16(FrameBytes/2), uint16(0), byte(0), false)
		f.Add(i, uint16(FrameBytes), uint16(FrameBytes-1), byte(0xFF), true)
	}

	f.Fuzz(func(t *testing.T, pick int, cut uint16, pos uint16, mask byte, reseal bool) {
		if pick < 0 {
			pick = -(pick + 1)
		}
		wire := append([]byte(nil), seeds[pick%len(seeds)]...)
		truncated := int(cut) < len(wire)
		if truncated {
			wire = wire[:cut]
		}
		if len(wire) > 0 {
			wire[int(pos)%len(wire)] ^= mask
		}
		if reseal && len(wire) > 4 {
			body := wire[:len(wire)-4]
			binary.LittleEndian.PutUint32(wire[len(wire)-4:], crc32.ChecksumIEEE(body))
		}

		fr, err := Decode(wire)
		if err != nil {
			return
		}
		// CRC32 detects any single corrupted byte in a full-length frame
		// that was not re-sealed.
		if mask != 0 && !truncated && !reseal {
			t.Fatalf("corrupted frame (byte %d ^= %#x) passed CRC", int(pos)%len(wire), mask)
		}
		// Whatever decodes must survive an encode/decode round trip with an
		// identical wire image — the replay buffer depends on it.
		re := fr.Encode()
		fr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Seq != fr.Seq || len(fr2.Txns) != len(fr.Txns) ||
			fr2.ReplayValid != fr.ReplayValid || fr2.ReplayFrom != fr.ReplayFrom ||
			fr2.Probe != fr.Probe || fr2.CumFreed != fr.CumFreed || fr2.CumAck != fr.CumAck {
			t.Fatalf("round trip changed frame: %+v vs %+v", fr, fr2)
		}
	})
}

func TestDecodeForgedCountDoesNotPanic(t *testing.T) {
	// Valid CRC, data kind, transaction count far beyond the body.
	body := make([]byte, FrameBytes-4)
	body[0] = byte(kindData)
	binary.LittleEndian.PutUint16(body[9:], 0xFFFF)
	wire := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(wire); err == nil {
		t.Fatal("forged frame decoded successfully")
	}
}

func TestDecodeForgedSizeRejected(t *testing.T) {
	// One transaction claiming a 2 GiB payload.
	var body []byte
	body = append(body, byte(kindData))
	body = binary.LittleEndian.AppendUint64(body, 1) // seq
	body = binary.LittleEndian.AppendUint16(body, 1) // count
	body = append(body, byte(capi.OpWriteReq))
	body = binary.LittleEndian.AppendUint64(body, 0x1000)  // addr
	body = binary.LittleEndian.AppendUint32(body, 1<<31-1) // size
	body = binary.LittleEndian.AppendUint32(body, 1)       // tag
	body = binary.LittleEndian.AppendUint16(body, 1)       // netid
	body = append(body, 0)                                 // bonded
	body = binary.LittleEndian.AppendUint32(body, 0)       // pasid
	body = append(body, 0)                                 // no data
	for len(body) < FrameBytes-4 {
		body = append(body, 0)
	}
	wire := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(wire); err == nil {
		t.Fatal("frame with forged size accepted")
	}
}
