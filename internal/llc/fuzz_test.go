package llc

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"thymesisflow/internal/capi"
)

// FuzzDecode drives Decode with arbitrary byte strings — including inputs
// re-sealed with a valid CRC so the header parser itself is exercised. It
// must never panic: a misbehaving fabric element can hand the receiver any
// bytes it likes.
func FuzzDecode(f *testing.F) {
	good := &Frame{Kind: kindData, Seq: 3, Txns: []*capi.Transaction{
		{Op: capi.OpReadReq, Addr: 0x1000, Size: 128, Tag: 7},
		{Op: capi.OpWriteReq, Addr: 0x2000, Size: 64, Tag: 8, Data: make([]byte, 64)},
	}}
	f.Add(good.Encode())
	ctrl := &Frame{Kind: kindControl, ReplayValid: true, ReplayFrom: 5, CreditReturn: 3, CumAck: 4}
	f.Add(ctrl.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	// A forged header with an absurd transaction count, sealed with a
	// valid CRC.
	forged := make([]byte, FrameBytes-4)
	forged[0] = byte(kindData)
	binary.LittleEndian.PutUint16(forged[9:], 0xFFFF)
	forged = binary.LittleEndian.AppendUint32(forged, crc32.ChecksumIEEE(forged))
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		// Successfully decoded frames must be internally consistent.
		for _, txn := range fr.Txns {
			if txn.Size < 0 || txn.Size > capi.Cacheline {
				t.Fatalf("decoded transaction with size %d", txn.Size)
			}
			if txn.Data != nil && int32(len(txn.Data)) != txn.Size {
				t.Fatalf("data length %d != size %d", len(txn.Data), txn.Size)
			}
		}
	})
}

func TestDecodeForgedCountDoesNotPanic(t *testing.T) {
	// Valid CRC, data kind, transaction count far beyond the body.
	body := make([]byte, FrameBytes-4)
	body[0] = byte(kindData)
	binary.LittleEndian.PutUint16(body[9:], 0xFFFF)
	wire := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(wire); err == nil {
		t.Fatal("forged frame decoded successfully")
	}
}

func TestDecodeForgedSizeRejected(t *testing.T) {
	// One transaction claiming a 2 GiB payload.
	var body []byte
	body = append(body, byte(kindData))
	body = binary.LittleEndian.AppendUint64(body, 1) // seq
	body = binary.LittleEndian.AppendUint16(body, 1) // count
	body = append(body, byte(capi.OpWriteReq))
	body = binary.LittleEndian.AppendUint64(body, 0x1000)  // addr
	body = binary.LittleEndian.AppendUint32(body, 1<<31-1) // size
	body = binary.LittleEndian.AppendUint32(body, 1)       // tag
	body = binary.LittleEndian.AppendUint16(body, 1)       // netid
	body = append(body, 0)                                 // bonded
	body = binary.LittleEndian.AppendUint32(body, 0)       // pasid
	body = append(body, 0)                                 // no data
	for len(body) < FrameBytes-4 {
		body = append(body, 0)
	}
	wire := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(wire); err == nil {
		t.Fatal("frame with forged size accepted")
	}
}
