package llc_test

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// Example sends transactions over a channel that drops 10% of frames: the
// LLC replay protocol delivers everything, in order, exactly once.
func Example() {
	k := sim.NewKernel()
	link := phy.NewLink(k, "wire", phy.LanesPerChannel, phy.SerdesCrossing,
		phy.FaultConfig{DropProb: 0.10, Seed: 4})
	tx, rx := llc.NewPair(k, "llc", link, llc.DefaultConfig())

	delivered := 0
	inOrder := true
	next := uint32(0)
	rx.OnReceive = func(t *capi.Transaction) {
		if t.Tag != next {
			inOrder = false
		}
		next++
		delivered++
	}
	k.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			tx.SendFrom(p, &capi.Transaction{
				Op: capi.OpReadReq, Addr: uint64(i) * 128, Size: 128, Tag: uint32(i),
			})
			p.Sleep(30 * sim.Nanosecond)
		}
	})
	k.RunUntil(sim.Second)

	st := tx.Stats()
	fmt.Printf("delivered=%d in-order=%v replayed-frames>0=%v\n",
		delivered, inOrder, st.TxReplayed > 0)
	// Output:
	// delivered=200 in-order=true replayed-frames>0=true
}
