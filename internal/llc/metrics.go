package llc

import "thymesisflow/internal/metrics"

// Registry adapter: Port keeps its protocol counters in the plain Stats
// struct (no per-increment synchronization on the simulation hot path) and
// this file bridges them into a metrics.Registry at snapshot time, turning
// absolute snapshots into counter increments via Stats.Sub.

// AddTo adds the counters of s — normally an interval delta produced by
// Stats.Sub — to registry counters named prefix + counter.
func (s Stats) AddTo(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix + "tx_frames").Add(s.TxFrames)
	reg.Counter(prefix + "tx_control").Add(s.TxControl)
	reg.Counter(prefix + "tx_replayed").Add(s.TxReplayed)
	reg.Counter(prefix + "rx_frames").Add(s.RxFrames)
	reg.Counter(prefix + "rx_crc_errors").Add(s.RxCRCErrors)
	reg.Counter(prefix + "rx_gaps").Add(s.RxGaps)
	reg.Counter(prefix + "rx_duplicates").Add(s.RxDuplicates)
	reg.Counter(prefix + "tx_transactions").Add(s.TxTransactions)
	reg.Counter(prefix + "rx_transactions").Add(s.RxTransactions)
	reg.Counter(prefix + "padding_flits").Add(s.PaddingFlits)
	reg.Counter(prefix + "credit_stalls").Add(s.CreditStalls)
	reg.Counter(prefix + "credit_probes").Add(s.CreditProbes)
	reg.Counter(prefix + "replay_exhausted").Add(s.ReplayExhausted)
	reg.Counter(prefix + "replay_overflows").Add(s.ReplayOverflows)
	reg.Counter(prefix + "tx_abandoned").Add(s.TxAbandoned)
	reg.Counter(prefix + "link_down_events").Add(s.LinkDownEvents)
}

// RegisterMetrics registers a collector that publishes p's protocol
// counters into reg under prefix (e.g. "llc.att-0.port0.") on every
// registry snapshot. Each collection adds only the activity since the
// previous one, so registry counters track the port exactly.
func RegisterMetrics(reg *metrics.Registry, prefix string, p *Port) {
	var prev Stats
	reg.AddCollector(func(r *metrics.Registry) {
		cur := p.Stats()
		cur.Sub(prev).AddTo(r, prefix)
		prev = cur
	})
	reg.GaugeFunc(prefix+"credits", func() float64 { return float64(p.Credits()) })
}
