// Package llc implements the ThymesisFlow Link-Layer Control protocol
// (Section IV-A4): a reliable, credit-flow-controlled framing layer between
// two endpoints of a network channel.
//
// Protocol features, mirroring the paper:
//
//   - Backpressure: a credit-based mechanism protects the Rx ingress queue
//     from overflow. Each credit represents one empty transaction slot at
//     the receiver; credits are returned piggy-backed on in-band control
//     frames flowing in the reverse direction.
//   - Frame replay: transactions are grouped into frames of a fixed number
//     of flits (incomplete frames are padded with single-flit nop headers
//     for immediate transmission). Frames carry consecutive sequence
//     numbers and a CRC. A receiver that observes a sequence gap or a CRC
//     error sends an in-band replay request; the transmitter then replays
//     the frame sequence in order from its replay buffer.
package llc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"thymesisflow/internal/capi"
)

// FrameFlits is the fixed frame size in flits. With 32-byte flits this
// yields 512-byte frames: large enough to amortize header overhead on
// cacheline traffic (one 128 B write = 5 flits), small enough to keep the
// padding cost of sparse traffic low.
const FrameFlits = 16

// FrameBytes is the wire size of every data frame.
const FrameBytes = FrameFlits * capi.FlitSize

// ControlFrameBytes is the wire size of the special single-flit frames used
// for in-band messages (replay requests and credit returns).
const ControlFrameBytes = capi.FlitSize

// frameKind discriminates data frames from in-band control frames.
type frameKind uint8

const (
	kindData frameKind = iota + 1
	kindControl
)

// Frame is one LLC frame. Data frames carry up to FrameFlits' worth of
// transaction flits; control frames carry replay requests and credit
// returns.
type Frame struct {
	Kind frameKind
	Seq  uint64 // data frames: consecutive sequence number

	Txns []*capi.Transaction // data frames

	// Control frame payload.
	ReplayFrom  uint64 // request replay starting at this sequence, if ReplayValid
	ReplayValid bool
	// CumFreed is the cumulative count of transaction slots freed at the
	// receiver since port creation. Carrying the running total instead of an
	// increment makes credit returns idempotent: a lost control frame is
	// repaired by any later one, so credits are conserved under arbitrary
	// control-frame loss.
	CumFreed uint64
	// Probe requests an immediate credit-return control frame from the peer.
	// A credit-starved transmitter sends probes when it has pending traffic
	// but no acknowledgement traffic left to piggy-back returns on.
	Probe  bool
	CumAck uint64 // highest in-order sequence received + 1 (prunes replay buffer)

	crc uint32
}

// flits returns the number of flits the frame's transactions occupy.
func (f *Frame) flits() int {
	n := 0
	for _, t := range f.Txns {
		n += t.Flits()
	}
	return n
}

// WireBytes returns the frame's on-wire size.
func (f *Frame) WireBytes() int {
	if f.Kind == kindControl {
		return ControlFrameBytes
	}
	return FrameBytes
}

// Encode serializes the frame to its wire representation, padding data
// frames to the full frame size and appending a CRC-32 in the trailer.
func (f *Frame) Encode() []byte {
	var buf []byte
	put8 := func(v uint8) { buf = append(buf, v) }
	put16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }
	put32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	put8(uint8(f.Kind))
	switch f.Kind {
	case kindControl:
		// Control frames carry no sequence number: they are idempotent and
		// outside the replay window, which keeps them within a single flit.
		if f.ReplayValid {
			put8(1)
		} else {
			put8(0)
		}
		put64(f.ReplayFrom)
		if f.Probe {
			put8(1)
		} else {
			put8(0)
		}
		put64(f.CumFreed)
		put64(f.CumAck)
	case kindData:
		put64(f.Seq)
		put16(uint16(len(f.Txns)))
		for _, t := range f.Txns {
			put8(uint8(t.Op))
			put64(t.Addr)
			put32(uint32(t.Size))
			put32(t.Tag)
			put16(t.NetworkID)
			if t.Bonded {
				put8(1)
			} else {
				put8(0)
			}
			put32(t.PASID)
			if t.Data != nil {
				put8(1)
				buf = append(buf, t.Data...)
			} else {
				put8(0)
			}
		}
	default:
		panic(fmt.Sprintf("llc: encode of unknown frame kind %d", f.Kind))
	}
	// Pad to the fixed wire size minus the 4-byte CRC trailer.
	want := f.WireBytes() - 4
	if len(buf) > want {
		panic(fmt.Sprintf("llc: frame payload %dB exceeds wire size %dB", len(buf), want))
	}
	for len(buf) < want {
		buf = append(buf, 0)
	}
	crc := crc32.ChecksumIEEE(buf)
	f.crc = crc
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// Decode parses a wire frame, verifying the CRC. A CRC mismatch returns
// ErrCRC; the caller reacts by requesting a replay.
func Decode(wire []byte) (*Frame, error) {
	if len(wire) < 5 {
		return nil, fmt.Errorf("llc: short frame (%dB)", len(wire))
	}
	body, trailer := wire[:len(wire)-4], wire[len(wire)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrCRC
	}
	// Bounds-checked readers: a frame can pass the CRC and still carry an
	// inconsistent header (e.g. forged by a misbehaving switch), so every
	// read is validated rather than trusted.
	pos := 0
	errShort := fmt.Errorf("llc: truncated frame body")
	need := func(n int) bool { return pos+n <= len(body) }
	get8 := func() uint8 { v := body[pos]; pos++; return v }
	get16 := func() uint16 { v := binary.LittleEndian.Uint16(body[pos:]); pos += 2; return v }
	get32 := func() uint32 { v := binary.LittleEndian.Uint32(body[pos:]); pos += 4; return v }
	get64 := func() uint64 { v := binary.LittleEndian.Uint64(body[pos:]); pos += 8; return v }

	f := &Frame{}
	if !need(1) {
		return nil, errShort
	}
	f.Kind = frameKind(get8())
	switch f.Kind {
	case kindControl:
		if !need(1 + 8 + 1 + 8 + 8) {
			return nil, errShort
		}
		f.ReplayValid = get8() == 1
		f.ReplayFrom = get64()
		f.Probe = get8() == 1
		f.CumFreed = get64()
		f.CumAck = get64()
	case kindData:
		if !need(8 + 2) {
			return nil, errShort
		}
		f.Seq = get64()
		n := int(get16())
		f.Txns = make([]*capi.Transaction, 0, n)
		for i := 0; i < n; i++ {
			const txnHeader = 1 + 8 + 4 + 4 + 2 + 1 + 4 + 1
			if !need(txnHeader) {
				return nil, errShort
			}
			t := &capi.Transaction{}
			t.Op = capi.Op(get8())
			t.Addr = get64()
			t.Size = int32(get32())
			t.Tag = get32()
			t.NetworkID = get16()
			t.Bonded = get8() == 1
			t.PASID = get32()
			if t.Size < 0 || t.Size > capi.Cacheline {
				return nil, fmt.Errorf("llc: frame carries invalid size %d", t.Size)
			}
			if get8() == 1 {
				if !need(int(t.Size)) {
					return nil, errShort
				}
				t.Data = append([]byte(nil), body[pos:pos+int(t.Size)]...)
				pos += int(t.Size)
			}
			f.Txns = append(f.Txns, t)
		}
	default:
		return nil, fmt.Errorf("llc: unknown frame kind %d", f.Kind)
	}
	return f, nil
}

// ErrCRC indicates a frame failed its CRC check.
var ErrCRC = fmt.Errorf("llc: frame CRC mismatch")
