package llc

import (
	"testing"
	"testing/quick"

	"thymesisflow/internal/capi"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	f := &Frame{
		Kind: kindData,
		Seq:  42,
		Txns: []*capi.Transaction{
			{Op: capi.OpReadReq, Addr: 0xDEADBEEF00, Size: 128, Tag: 7, NetworkID: 3, Bonded: true},
			{Op: capi.OpWriteResp, Addr: 0x1000, Size: 0, Tag: 9},
		},
	}
	wire := f.Encode()
	if len(wire) != FrameBytes {
		t.Fatalf("wire size = %d, want %d", len(wire), FrameBytes)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || len(got.Txns) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	tx := got.Txns[0]
	if tx.Op != capi.OpReadReq || tx.Addr != 0xDEADBEEF00 || tx.Size != 128 ||
		tx.Tag != 7 || tx.NetworkID != 3 || !tx.Bonded {
		t.Fatalf("decoded txn %+v", tx)
	}
}

func TestFrameWithDataPayload(t *testing.T) {
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	f := &Frame{
		Kind: kindData,
		Seq:  1,
		Txns: []*capi.Transaction{
			{Op: capi.OpWriteReq, Addr: 0x80, Size: 128, Tag: 1, Data: data},
		},
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txns[0].Data) != 128 {
		t.Fatalf("payload length %d", len(got.Txns[0].Data))
	}
	for i, b := range got.Txns[0].Data {
		if b != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Kind:        kindControl,
		ReplayValid: true,
		ReplayFrom:  100,
		CumFreed:    37,
		Probe:       true,
		CumAck:      99,
	}
	wire := f.Encode()
	if len(wire) != ControlFrameBytes {
		t.Fatalf("control wire size = %d, want %d", len(wire), ControlFrameBytes)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ReplayValid || got.ReplayFrom != 100 || got.CumFreed != 37 || !got.Probe || got.CumAck != 99 {
		t.Fatalf("decoded control %+v", got)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	f := &Frame{Kind: kindData, Seq: 5, Txns: []*capi.Transaction{
		{Op: capi.OpReadReq, Addr: 0x100, Size: 128, Tag: 1},
	}}
	wire := f.Encode()
	for _, pos := range []int{0, 10, len(wire) - 5} {
		mut := append([]byte(nil), wire...)
		mut[pos] ^= 0x42
		if _, err := Decode(mut); err != ErrCRC {
			t.Fatalf("corruption at byte %d not detected: %v", pos, err)
		}
	}
}

func TestDecodeShortFrame(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestFrameOverflowPanics(t *testing.T) {
	txns := make([]*capi.Transaction, 0, 8)
	data := make([]byte, 128)
	for i := 0; i < 8; i++ { // 8 writes x 5 flits = 40 flits >> 16
		txns = append(txns, &capi.Transaction{Op: capi.OpWriteReq, Addr: 0, Size: 128, Data: data})
	}
	f := &Frame{Kind: kindData, Txns: txns}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized frame encoded without panic")
		}
	}()
	f.Encode()
}

// Property: encode/decode round-trips arbitrary (valid) transactions.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(addr uint64, tag uint32, netID uint16, bonded bool, read bool) bool {
		op := capi.OpWriteReq
		var data []byte
		if read {
			op = capi.OpReadReq
		} else {
			data = make([]byte, 128)
		}
		fr := &Frame{Kind: kindData, Seq: 1, Txns: []*capi.Transaction{
			{Op: op, Addr: addr, Size: 128, Tag: tag, NetworkID: netID, Bonded: bonded, Data: data},
		}}
		got, err := Decode(fr.Encode())
		if err != nil {
			return false
		}
		g := got.Txns[0]
		return g.Op == op && g.Addr == addr && g.Tag == tag &&
			g.NetworkID == netID && g.Bonded == bonded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
