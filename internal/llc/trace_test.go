package llc

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

func TestStatsSub(t *testing.T) {
	a := Stats{TxFrames: 10, RxFrames: 8, TxReplayed: 2, CreditStalls: 5, PaddingFlits: 100}
	b := Stats{TxFrames: 25, RxFrames: 20, TxReplayed: 2, CreditStalls: 9, PaddingFlits: 160}
	d := b.Sub(a)
	want := Stats{TxFrames: 15, RxFrames: 12, TxReplayed: 0, CreditStalls: 4, PaddingFlits: 60}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if z := a.Sub(a); z != (Stats{}) {
		t.Fatalf("self-Sub = %+v, want zero", z)
	}
}

// TestPortTraceEvents drives a lossy link with a tracer attached and checks
// the protocol's trace vocabulary shows up: per-frame tx instants, gap
// instants, and closed replay-window spans.
func TestPortTraceEvents(t *testing.T) {
	k := sim.NewKernel()
	// Big enough to retain the whole run: the kernel's per-event sim spans
	// dominate, and eviction would drop the early tx_frame instants.
	ring := trace.NewRing(1 << 16)
	k.SetTracer(ring)
	a, b := newTestPair(k, phy.FaultConfig{DropProb: 0.10, Seed: 7}, DefaultConfig())
	var got int
	b.OnReceive = func(*capi.Transaction) { got++ }
	const n = 300
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.SendFrom(p, readReq(uint32(i)))
			p.Sleep(20 * sim.Nanosecond)
		}
	})
	k.RunUntil(50 * sim.Millisecond)
	if got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}

	var txFrames, gaps, replaySpans, openReplay int
	for _, e := range ring.Snapshot() {
		if e.Layer != trace.LayerLLC && e.Layer != trace.LayerPhy && e.Layer != trace.LayerSim {
			t.Fatalf("unexpected layer %q", e.Layer)
		}
		if e.Layer != trace.LayerLLC {
			continue
		}
		switch {
		case e.Name == "tx_frame" && e.Ph == trace.PhaseInstant:
			txFrames++
		case e.Name == "rx_gap" && e.Ph == trace.PhaseInstant:
			gaps++
		case e.Name == "replay" && e.Ph == trace.PhaseSpan:
			replaySpans++
			if e.Dur < 0 {
				openReplay++
			}
		}
	}
	if txFrames == 0 {
		t.Fatal("no tx_frame instants recorded")
	}
	if gaps == 0 || replaySpans == 0 {
		t.Fatalf("gaps=%d replaySpans=%d; expected replay activity under 10%% loss", gaps, replaySpans)
	}
	if openReplay != 0 {
		t.Fatalf("%d replay spans left open after in-order delivery resumed", openReplay)
	}
}

// TestRegisterMetrics checks the registry adapter: snapshot counters track
// the port's cumulative stats across multiple collections, and the credit
// gauge reports the live value.
func TestRegisterMetrics(t *testing.T) {
	k := sim.NewKernel()
	a, b := newTestPair(k, phy.FaultConfig{}, DefaultConfig())
	b.OnReceive = func(*capi.Transaction) {}
	reg := metrics.NewRegistry()
	RegisterMetrics(reg, "llc.a.", a)

	send := func(count int) {
		k.Go("tx", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				a.SendFrom(p, readReq(uint32(i)))
				p.Sleep(10 * sim.Nanosecond)
			}
		})
		k.RunUntil(k.Now() + sim.Millisecond)
	}

	send(10)
	s1 := reg.Snapshot()
	if got := s1.Counters["llc.a.tx_transactions"]; got != a.Stats().TxTransactions {
		t.Fatalf("tx_transactions = %d, want %d", got, a.Stats().TxTransactions)
	}
	send(5)
	s2 := reg.Snapshot()
	if got := s2.Counters["llc.a.tx_transactions"]; got != a.Stats().TxTransactions {
		t.Fatalf("after second interval: tx_transactions = %d, want %d (cumulative)",
			got, a.Stats().TxTransactions)
	}
	if s2.Counters["llc.a.tx_transactions"] <= s1.Counters["llc.a.tx_transactions"] {
		t.Fatal("second snapshot did not advance")
	}
	if g := s2.Gauges["llc.a.credits"]; g != float64(a.Credits()) {
		t.Fatalf("credits gauge = %v, want %d", g, a.Credits())
	}
}
