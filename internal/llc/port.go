package llc

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// Config tunes a Port's protocol parameters.
type Config struct {
	// Credits is the Rx ingress queue depth in transaction slots. The
	// paper notes the depth is "carefully calculated to avoid credit
	// starvation at the Tx side"; 256 slots cover the bandwidth-delay
	// product of a 12.5 GiB/s channel at ~1 us RTT with margin.
	Credits int
	// ReplayBuffer is the number of transmitted frames retained for replay.
	ReplayBuffer int
	// ReplayTimeout re-requests a replay if an expected frame has not
	// arrived (covers the case where the replay request itself is lost).
	ReplayTimeout sim.Time
	// MaxReplayAttempts bounds how long the port fights a dead link: after
	// this many consecutive timeout-driven retransmissions of one frame (Tx
	// side), unanswered replay requests (Rx side), or unanswered credit
	// probes, the port escalates to the link-down state instead of retrying
	// forever. Zero selects the default.
	MaxReplayAttempts int
}

// DefaultMaxReplayAttempts is the escalation threshold substituted for a
// zero Config.MaxReplayAttempts: generous enough that any statistically
// recoverable loss pattern recovers (32 consecutive losses of one frame at
// 10% loss has probability 1e-32), small enough that a dead link is
// declared down in ~32 replay timeouts.
const DefaultMaxReplayAttempts = 32

// DefaultConfig returns the calibrated protocol parameters.
func DefaultConfig() Config {
	return Config{
		Credits:           256,
		ReplayBuffer:      1024,
		ReplayTimeout:     20 * sim.Microsecond,
		MaxReplayAttempts: DefaultMaxReplayAttempts,
	}
}

// Port is one end of an LLC link: it transmits frames on `out`, receives
// deliveries from `in`, and hands received transactions to OnReceive.
// Create both ends with NewPair.
type Port struct {
	k    *sim.Kernel
	name string
	cfg  Config
	out  *phy.Channel
	peer *Port

	// split marks a pair whose two ends live on different simulation
	// kernels (shard boundary). A split port never touches its peer's
	// state at event time: latency-attribution records travel in-band as
	// delivery aux data instead of being pulled from the peer's stash.
	split bool
	// inCrossing caches the inbound channel's crossing latency (the
	// peer's out.CrossingPS()), captured at pair time so the receive path
	// needs no cross-kernel read.
	inCrossing int64

	// OnReceive delivers in-order, CRC-clean transactions to the upper
	// layer (the routing layer / endpoint attachment logic).
	OnReceive func(*capi.Transaction)

	// OnLinkDown, when set, is invoked (as a fresh event) the moment the
	// port escalates to the link-down state. Endpoint logic uses it to fault
	// outstanding transactions deterministically instead of hanging forever.
	OnLinkDown func()

	// Tx state.
	credits     int
	freedSeen   uint64 // highest cumulative slots-freed total seen from the peer
	pending     []*capi.Transaction
	flushQueued bool
	nextSeq     uint64
	replayBuf   map[uint64][]byte // seq -> encoded wire frame
	oldestKept  uint64
	// latBySeq carries latency-attribution records across the wire
	// encode/decode boundary: frames serialize to bytes, so the receiver's
	// decoded transactions cannot carry the Lat pointer in-band. The
	// transmitter keeps the records here, aligned with the frame's
	// transaction order, and the paired receiver re-attaches them on the
	// frame's single in-order delivery (replays retransmit bytes; the
	// records survive here until that delivery happens). nil until a frame
	// actually carries a record, so disabled runs never allocate it.
	latBySeq      map[uint64][]*latency.Record
	probeTimer    *sim.Event
	probeAttempts int

	// Rx state.
	expected     uint64
	freedTotal   uint64 // cumulative transaction slots freed since creation
	replayAsked  bool
	replayTimer  *sim.Event
	rxStalls     int // consecutive replay timeouts without forward progress
	credQueued   bool
	creditWaiter *sim.Signal

	// down latches once the port escalates: replay attempts, replay
	// requests, or credit probes exhausted MaxReplayAttempts. A down port
	// stops transmitting and ignores deliveries (the link is fenced).
	down bool

	// replaySpan is the open trace span of the current replay window (0
	// when no replay is outstanding or tracing is disabled).
	replaySpan trace.SpanToken

	// Stats.
	stats Stats
}

// Stats aggregates protocol counters. All fields are cumulative since port
// creation and only ever increase.
type Stats struct {
	TxFrames       int64
	TxControl      int64
	TxReplayed     int64
	RxFrames       int64
	RxCRCErrors    int64
	RxGaps         int64
	RxDuplicates   int64
	TxTransactions int64
	RxTransactions int64
	PaddingFlits   int64
	CreditStalls   int64
	// CreditProbes counts probe control frames sent while credit-starved
	// with pending traffic (the repair path for lost credit returns).
	CreditProbes int64
	// ReplayExhausted counts escalations caused by a frame, replay request,
	// or credit probe exceeding MaxReplayAttempts without progress.
	ReplayExhausted int64
	// ReplayOverflows counts escalations caused by a full replay window
	// (the peer stopped acknowledging entirely).
	ReplayOverflows int64
	// TxAbandoned counts transactions discarded because the port was down.
	TxAbandoned int64
	// LinkDownEvents counts transitions into the link-down state (0 or 1:
	// the state latches).
	LinkDownEvents int64
}

// Stats returns a snapshot of the port's counters: a value copy taken at
// call time. The snapshot does not track later protocol activity — take a
// second snapshot and diff with Sub to measure an interval:
//
//	before := p.Stats()
//	// ... run traffic ...
//	window := p.Stats().Sub(before)
func (p *Port) Stats() Stats { return p.stats }

// Sub returns the counter-wise difference s - prev: the protocol activity
// between the two snapshots. The registry adapter (RegisterMetrics) uses it
// to convert absolute snapshots into counter increments.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		TxFrames:        s.TxFrames - prev.TxFrames,
		TxControl:       s.TxControl - prev.TxControl,
		TxReplayed:      s.TxReplayed - prev.TxReplayed,
		RxFrames:        s.RxFrames - prev.RxFrames,
		RxCRCErrors:     s.RxCRCErrors - prev.RxCRCErrors,
		RxGaps:          s.RxGaps - prev.RxGaps,
		RxDuplicates:    s.RxDuplicates - prev.RxDuplicates,
		TxTransactions:  s.TxTransactions - prev.TxTransactions,
		RxTransactions:  s.RxTransactions - prev.RxTransactions,
		PaddingFlits:    s.PaddingFlits - prev.PaddingFlits,
		CreditStalls:    s.CreditStalls - prev.CreditStalls,
		CreditProbes:    s.CreditProbes - prev.CreditProbes,
		ReplayExhausted: s.ReplayExhausted - prev.ReplayExhausted,
		ReplayOverflows: s.ReplayOverflows - prev.ReplayOverflows,
		TxAbandoned:     s.TxAbandoned - prev.TxAbandoned,
		LinkDownEvents:  s.LinkDownEvents - prev.LinkDownEvents,
	}
}

// NewPair wires two ports over a bidirectional phy link and returns
// (a, b): a transmits on link.AtoB and receives from link.BtoA; b is the
// mirror image.
func NewPair(k *sim.Kernel, name string, link *phy.Link, cfg Config) (*Port, *Port) {
	return NewPairOn(k, k, name, link, cfg)
}

// NewPairOn wires a pair whose ends run on different kernels: a on ka, b on
// kb (a shard boundary; the link must have been built with the matching
// kernels, e.g. phy.NewLinkSplit(ka, kb, ...)). With ka == kb this is
// NewPair. On a split pair the transmit side attaches latency-attribution
// records to the delivery itself (Delivery.Aux) — replayed frames carry
// them again, so a record still arrives exactly once, on the frame's single
// in-order delivery.
func NewPairOn(ka, kb *sim.Kernel, name string, link *phy.Link, cfg Config) (*Port, *Port) {
	a := newPort(ka, name+".a", link.AtoB, cfg)
	b := newPort(kb, name+".b", link.BtoA, cfg)
	a.peer, b.peer = b, a
	a.split = ka != kb
	b.split = a.split
	a.inCrossing = link.BtoA.CrossingPS()
	b.inCrossing = link.AtoB.CrossingPS()
	link.AtoB.OnDeliver(b.receive)
	link.BtoA.OnDeliver(a.receive)
	return a, b
}

func newPort(k *sim.Kernel, name string, out *phy.Channel, cfg Config) *Port {
	if cfg.Credits <= 0 || cfg.ReplayBuffer <= 0 || cfg.ReplayTimeout <= 0 {
		panic("llc: invalid config")
	}
	if cfg.MaxReplayAttempts <= 0 {
		cfg.MaxReplayAttempts = DefaultMaxReplayAttempts
	}
	// Every unacknowledged data frame carries at least one credit-consuming
	// transaction, so at most Credits frames are ever unacknowledged; a
	// smaller replay buffer could be forced to abandon unacked frames,
	// silently breaking losslessness.
	if cfg.ReplayBuffer < cfg.Credits {
		panic(fmt.Sprintf("llc: replay buffer %d smaller than credit window %d", cfg.ReplayBuffer, cfg.Credits))
	}
	return &Port{
		k:            k,
		name:         name,
		cfg:          cfg,
		out:          out,
		credits:      cfg.Credits,
		replayBuf:    make(map[uint64][]byte),
		creditWaiter: sim.NewSignal(k),
	}
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Credits returns the Tx-side credit count currently available.
func (p *Port) Credits() int { return p.credits }

// Peer returns the other end of the link (nil for unpaired ports).
func (p *Port) Peer() *Port { return p.peer }

// Channel returns the outbound phy channel — campaign engines install fault
// schedules on it.
func (p *Port) Channel() *phy.Channel { return p.out }

// Down reports whether the port has escalated to the link-down state.
func (p *Port) Down() bool { return p.down }

// ReplayDepth returns the number of transmitted frames held in the replay
// buffer awaiting acknowledgement — the flight recorder's gauge of how far
// behind its ack horizon the link is running.
func (p *Port) ReplayDepth() int { return len(p.replayBuf) }

// Send queues a transaction for transmission. Transactions arriving within
// the same event cascade are packed into common frames. If the transmitter
// is out of credits the transaction waits (backpressure) — Send itself never
// blocks the caller; use SendFrom for process-context flow control.
func (p *Port) Send(t *capi.Transaction) {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("llc: %s: sending invalid transaction: %v", p.name, err))
	}
	if p.down {
		p.stats.TxAbandoned++
		return
	}
	p.pending = append(p.pending, t)
	p.scheduleFlush()
}

// SendFrom is like Send but, when the link has a large untransmitted
// backlog, blocks the calling process until credits free up — modelling a
// full Tx queue pushing back into the fabric. If the port escalates to
// link-down while the caller is stalled, the call returns without sending
// (the transaction is abandoned and counted; the endpoint's link-down hook
// is responsible for faulting it).
func (p *Port) SendFrom(proc *sim.Proc, t *capi.Transaction) {
	if p.credits <= 0 && !p.down {
		var tok trace.SpanToken
		if tr := p.k.Tracer(); tr != nil {
			tok = tr.Begin(trace.LayerLLC, "credit_stall", p.k.NowPS())
		}
		for p.credits <= 0 && !p.down {
			p.stats.CreditStalls++
			p.creditWaiter.Wait(proc)
		}
		if tr := p.k.Tracer(); tr != nil {
			tr.End(tok, p.k.NowPS())
		}
		if t.Lat != nil {
			t.Lat.MarkTo(latency.StageCreditStall, p.k.NowPS())
		}
	}
	p.Send(t)
}

func (p *Port) scheduleFlush() {
	if p.flushQueued {
		return
	}
	p.flushQueued = true
	p.k.Schedule(0, p.flush)
}

// flush packs pending transactions into frames and transmits as many as
// credits allow. Incomplete trailing frames are padded (accounted as
// padding flits) and sent immediately rather than waiting for more traffic.
func (p *Port) flush() {
	p.flushQueued = false
	if p.down {
		return
	}
	for len(p.pending) > 0 && p.credits > 0 {
		if p.nextSeq-p.oldestKept >= uint64(p.cfg.ReplayBuffer) {
			// Replay window full: the peer has stopped acknowledging.
			// Transmitting would force an unacked frame out of the replay
			// buffer and silently break losslessness — escalate instead.
			// (Unreachable while ReplayBuffer >= Credits; kept as a guard.)
			p.stats.ReplayOverflows++
			p.escalateDown()
			return
		}
		f := &Frame{Kind: kindData, Seq: p.nextSeq}
		flitsLeft := FrameFlits
		for len(p.pending) > 0 && p.credits > 0 {
			t := p.pending[0]
			fl := t.Flits()
			if fl > flitsLeft {
				break
			}
			f.Txns = append(f.Txns, t)
			p.pending = p.pending[1:]
			flitsLeft -= fl
			p.credits--
			p.stats.TxTransactions++
			if t.Lat != nil {
				// Queue wait ends when the transaction is packed into a
				// frame; from here until delivery is wire time.
				if t.IsResponse() {
					t.Lat.MarkTo(latency.StageRetQueue, p.k.NowPS())
				} else {
					t.Lat.MarkTo(latency.StageLLCQueue, p.k.NowPS())
				}
			}
		}
		if len(f.Txns) == 0 {
			break // head transaction blocked on credits
		}
		p.stats.PaddingFlits += int64(flitsLeft)
		p.transmitFrame(f)
	}
	if len(p.pending) > 0 && p.credits <= 0 {
		// Starved with pending traffic: if the credit returns were lost there
		// is no data flowing to piggy-back repairs on, so probe explicitly.
		p.armProbeTimer()
	}
}

func (p *Port) transmitFrame(f *Frame) {
	wire := f.Encode()
	p.nextSeq++
	p.replayBuf[f.Seq] = wire
	p.stashLatRecords(f)
	p.stats.TxFrames++
	if tr := p.k.Tracer(); tr != nil {
		tr.Instant(trace.LayerLLC, "tx_frame", p.k.NowPS())
	}
	p.transmitWire(f.Seq, wire)
	p.armTxTimer(f.Seq, 0)
}

// transmitWire puts an encoded data frame on the channel. On a split pair
// the stashed attribution records ride along as delivery aux data; the
// stash itself is still kept until the peer's CumAck prunes it, so a
// replayed frame carries the records again if the first copy was lost.
func (p *Port) transmitWire(seq uint64, wire []byte) {
	if p.split {
		if recs, ok := p.latBySeq[seq]; ok {
			p.out.TransmitAux(wire, len(wire), recs)
			return
		}
	}
	p.out.Transmit(wire, len(wire))
}

// stashLatRecords retains the frame's latency-attribution records (aligned
// with f.Txns) for the receiver to re-attach after decode. Only called for
// frames that carry at least one record; no-op otherwise.
func (p *Port) stashLatRecords(f *Frame) {
	var recs []*latency.Record
	for i, t := range f.Txns {
		if t.Lat == nil {
			continue
		}
		if recs == nil {
			recs = make([]*latency.Record, len(f.Txns))
		}
		recs[i] = t.Lat
	}
	if recs == nil {
		return
	}
	if p.latBySeq == nil {
		p.latBySeq = make(map[uint64][]*latency.Record)
	}
	p.latBySeq[f.Seq] = recs
}

// takeLatRecords consumes the records stashed for seq (nil if none).
func (p *Port) takeLatRecords(seq uint64) []*latency.Record {
	if p.latBySeq == nil {
		return nil
	}
	recs, ok := p.latBySeq[seq]
	if !ok {
		return nil
	}
	delete(p.latBySeq, seq)
	return recs
}

// armTxTimer covers tail loss: if a frame is still unacknowledged after the
// replay timeout (e.g. it was the last frame of a burst and was dropped, so
// the receiver never saw a sequence gap), retransmit it proactively. After
// MaxReplayAttempts consecutive timeouts for the same frame the port
// declares the link dead and escalates.
func (p *Port) armTxTimer(seq uint64, attempt int) {
	p.k.Schedule(p.cfg.ReplayTimeout, func() {
		if p.down || p.oldestKept > seq {
			return // link fenced, or frame acknowledged
		}
		if _, ok := p.replayBuf[seq]; !ok {
			return
		}
		if attempt >= p.cfg.MaxReplayAttempts {
			p.stats.ReplayExhausted++
			p.escalateDown()
			return
		}
		wire := p.replayBuf[seq]
		p.stats.TxReplayed++
		p.transmitWire(seq, wire)
		p.armTxTimer(seq, attempt+1)
	})
}

// sendControl emits an in-band single-flit control frame. Every control
// frame carries the receiver's full cumulative state — slots freed since
// creation (CumFreed) and the in-order ack horizon (CumAck) — so control
// frames are idempotent: loss of any one is repaired by the next, and
// credits are conserved under arbitrary control-frame loss. Control frames
// bypass credits and the replay buffer.
func (p *Port) sendControl(replayValid bool, replayFrom uint64, probe bool) {
	f := &Frame{
		Kind:        kindControl,
		ReplayValid: replayValid,
		ReplayFrom:  replayFrom,
		Probe:       probe,
		CumFreed:    p.freedTotal,
		CumAck:      p.expected,
	}
	wire := f.Encode()
	p.stats.TxControl++
	p.out.Transmit(wire, len(wire))
}

// armProbeTimer starts the credit-probe cycle; probes repeat every replay
// timeout while the port stays starved, and escalate once exhausted.
func (p *Port) armProbeTimer() {
	if p.probeTimer != nil || p.down {
		return
	}
	p.probeTimer = p.k.Schedule(p.cfg.ReplayTimeout, func() {
		p.probeTimer = nil
		if p.down || p.credits > 0 || len(p.pending) == 0 {
			p.probeAttempts = 0
			return
		}
		if p.probeAttempts >= p.cfg.MaxReplayAttempts {
			p.stats.ReplayExhausted++
			p.escalateDown()
			return
		}
		p.probeAttempts++
		p.stats.CreditProbes++
		p.sendControl(false, 0, true)
		p.armProbeTimer()
	})
}

// escalateDown latches the port into the link-down state: recovery has
// exhausted its retry budget, so the link is fenced rather than retried
// forever. A down port stops transmitting, ignores deliveries, releases
// credit-stalled senders (their transactions are abandoned and counted) and
// notifies the upper layer through OnLinkDown so outstanding transactions
// can be faulted deterministically.
func (p *Port) escalateDown() {
	if p.down {
		return
	}
	p.down = true
	p.stats.LinkDownEvents++
	p.cancelReplayTimer()
	if p.probeTimer != nil {
		p.probeTimer.Cancel()
		p.probeTimer = nil
	}
	if tr := p.k.Tracer(); tr != nil {
		tr.Instant(trace.LayerLLC, "link_down", p.k.NowPS())
		if p.replaySpan != 0 {
			tr.End(p.replaySpan, p.k.NowPS())
			p.replaySpan = 0
		}
	}
	p.stats.TxAbandoned += int64(len(p.pending))
	p.pending = nil
	p.latBySeq = nil // abandoned records are never observed
	p.creditWaiter.Broadcast()
	if p.OnLinkDown != nil {
		cb := p.OnLinkDown
		p.k.Schedule(0, cb)
	}
}

// Deliver injects a phy delivery into this port's receive path. NewPair
// installs it on the direct link automatically; switched topologies
// (internal/fabric) re-point the final hop's OnDeliver here.
func (p *Port) Deliver(d phy.Delivery) { p.receive(d) }

// receive handles a phy delivery on the inbound channel.
func (p *Port) receive(d phy.Delivery) {
	if p.down {
		return // fenced: late deliveries are ignored
	}
	wire, ok := d.Payload.([]byte)
	if !ok {
		panic("llc: non-frame payload on channel")
	}
	if d.Corrupted {
		// Emulate line corruption before the CRC check.
		wire = append([]byte(nil), wire...)
		wire[0] ^= 0xFF
	}
	f, err := Decode(wire)
	if err != nil {
		p.stats.RxCRCErrors++
		if tr := p.k.Tracer(); tr != nil {
			tr.Instant(trace.LayerLLC, "rx_crc_error", p.k.NowPS())
		}
		// CRC error: we cannot trust the header, ask for replay from the
		// next expected frame.
		p.requestReplay()
		return
	}
	switch f.Kind {
	case kindControl:
		p.handleControl(f)
	case kindData:
		p.handleData(f, d.Aux)
	}
}

func (p *Port) handleControl(f *Frame) {
	if f.CumFreed > p.freedSeen {
		p.credits += int(f.CumFreed - p.freedSeen)
		p.freedSeen = f.CumFreed
		if p.credits > p.cfg.Credits {
			panic(fmt.Sprintf("llc: %s: credit overflow (%d > %d)", p.name, p.credits, p.cfg.Credits))
		}
		if p.probeTimer != nil {
			p.probeTimer.Cancel()
			p.probeTimer = nil
		}
		p.probeAttempts = 0
		p.creditWaiter.Broadcast()
		p.scheduleFlush()
	}
	if f.Probe {
		// The peer is credit-starved and suspects lost returns: refresh our
		// cumulative state immediately (idempotent, so always safe).
		p.scheduleCreditReturn()
	}
	// Prune the replay buffer up to the peer's cumulative ack. Stashed
	// attribution records are normally consumed by the receiver's in-order
	// delivery; pruning covers receivers that never take them.
	for del := p.oldestKept; del < f.CumAck; del++ {
		delete(p.replayBuf, del)
		if p.latBySeq != nil {
			delete(p.latBySeq, del)
		}
	}
	if f.CumAck > p.oldestKept {
		p.oldestKept = f.CumAck
	}
	if f.ReplayValid {
		p.replay(f.ReplayFrom)
	}
}

// replay retransmits frames in order starting at from.
func (p *Port) replay(from uint64) {
	if from < p.oldestKept {
		from = p.oldestKept
	}
	for seq := from; seq < p.nextSeq; seq++ {
		wire, ok := p.replayBuf[seq]
		if !ok {
			continue // already acked by a newer CumAck
		}
		p.stats.TxReplayed++
		p.transmitWire(seq, wire)
	}
}

func (p *Port) handleData(f *Frame, aux any) {
	p.stats.RxFrames++
	switch {
	case f.Seq == p.expected:
		var recs []*latency.Record
		if p.split {
			// Shard boundary: the records came in-band with this delivery
			// (duplicates are filtered by the sequence check above, so a
			// record is attached exactly once).
			recs, _ = aux.([]*latency.Record)
		} else if p.peer != nil {
			recs = p.peer.takeLatRecords(f.Seq)
		}
		if recs != nil {
			now := p.k.NowPS()
			flight := p.inCrossing
			for i, t := range f.Txns {
				if i < len(recs) && recs[i] != nil {
					t.Lat = recs[i]
					// Split the time since the transmit-side stamp into
					// serialization/queueing/replay versus the flight
					// crossing the receiver knows.
					if t.IsResponse() {
						t.Lat.Wire(latency.StageRetTx, latency.StageRetFlight, now, flight)
					} else {
						t.Lat.Wire(latency.StageFrameTx, latency.StagePhyFlight, now, flight)
					}
				}
			}
		}
		p.expected++
		p.rxStalls = 0
		p.cancelReplayTimer()
		if p.replaySpan != 0 {
			// In-order delivery resumed: the replay window closes.
			if tr := p.k.Tracer(); tr != nil {
				tr.End(p.replaySpan, p.k.NowPS())
			}
			p.replaySpan = 0
		}
		p.replayAsked = false
		for _, t := range f.Txns {
			if t.Op == capi.OpNop {
				continue
			}
			p.stats.RxTransactions++
			p.freedTotal++
			if p.OnReceive != nil {
				p.OnReceive(t)
			}
		}
		p.scheduleCreditReturn()
	case f.Seq > p.expected:
		p.stats.RxGaps++
		if tr := p.k.Tracer(); tr != nil {
			tr.Instant(trace.LayerLLC, "rx_gap", p.k.NowPS())
		}
		p.requestReplay()
	default:
		// Duplicate from a replay we already consumed.
		p.stats.RxDuplicates++
		p.scheduleCreditReturn() // refresh CumAck so the peer prunes
	}
}

// requestReplay asks the peer to retransmit from the next expected frame.
// Repeated triggers within one outage coalesce; a timer covers the loss of
// the request itself.
func (p *Port) requestReplay() {
	if p.replayAsked {
		return
	}
	p.replayAsked = true
	if p.replaySpan == 0 {
		// Open the replay-window span; timer-driven re-requests within the
		// same outage keep the original span running.
		if tr := p.k.Tracer(); tr != nil {
			p.replaySpan = tr.Begin(trace.LayerLLC, "replay", p.k.NowPS())
		}
	}
	p.sendControl(true, p.expected, false)
	p.armReplayTimer()
}

func (p *Port) armReplayTimer() {
	p.cancelReplayTimer()
	p.replayTimer = p.k.Schedule(p.cfg.ReplayTimeout, func() {
		p.replayTimer = nil
		p.rxStalls++
		if p.rxStalls > p.cfg.MaxReplayAttempts {
			// Replay requests are going unanswered: the reverse path (or the
			// peer) is dead. Fence the link instead of re-requesting forever.
			p.stats.ReplayExhausted++
			p.escalateDown()
			return
		}
		p.replayAsked = false
		p.requestReplay()
	})
}

func (p *Port) cancelReplayTimer() {
	if p.replayTimer != nil {
		p.replayTimer.Cancel()
		p.replayTimer = nil
	}
}

// scheduleCreditReturn batches the credit/ack updates accumulated within one
// event cascade into a single control frame carrying the full cumulative
// state.
func (p *Port) scheduleCreditReturn() {
	if p.credQueued || p.down {
		return
	}
	p.credQueued = true
	p.k.Schedule(0, func() {
		p.credQueued = false
		if p.down {
			return
		}
		p.sendControl(false, 0, false)
	})
}
