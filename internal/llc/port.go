package llc

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// Config tunes a Port's protocol parameters.
type Config struct {
	// Credits is the Rx ingress queue depth in transaction slots. The
	// paper notes the depth is "carefully calculated to avoid credit
	// starvation at the Tx side"; 256 slots cover the bandwidth-delay
	// product of a 12.5 GiB/s channel at ~1 us RTT with margin.
	Credits int
	// ReplayBuffer is the number of transmitted frames retained for replay.
	ReplayBuffer int
	// ReplayTimeout re-requests a replay if an expected frame has not
	// arrived (covers the case where the replay request itself is lost).
	ReplayTimeout sim.Time
}

// DefaultConfig returns the calibrated protocol parameters.
func DefaultConfig() Config {
	return Config{
		Credits:       256,
		ReplayBuffer:  1024,
		ReplayTimeout: 20 * sim.Microsecond,
	}
}

// Port is one end of an LLC link: it transmits frames on `out`, receives
// deliveries from `in`, and hands received transactions to OnReceive.
// Create both ends with NewPair.
type Port struct {
	k    *sim.Kernel
	name string
	cfg  Config
	out  *phy.Channel
	peer *Port

	// OnReceive delivers in-order, CRC-clean transactions to the upper
	// layer (the routing layer / endpoint attachment logic).
	OnReceive func(*capi.Transaction)

	// Tx state.
	credits     int
	pending     []*capi.Transaction
	flushQueued bool
	nextSeq     uint64
	replayBuf   map[uint64][]byte // seq -> encoded wire frame
	oldestKept  uint64

	// Rx state.
	expected     uint64
	replayAsked  bool
	replayTimer  *sim.Event
	pendingCred  uint32
	credQueued   bool
	creditWaiter *sim.Signal

	// replaySpan is the open trace span of the current replay window (0
	// when no replay is outstanding or tracing is disabled).
	replaySpan trace.SpanToken

	// Stats.
	stats Stats
}

// Stats aggregates protocol counters. All fields are cumulative since port
// creation and only ever increase.
type Stats struct {
	TxFrames       int64
	TxControl      int64
	TxReplayed     int64
	RxFrames       int64
	RxCRCErrors    int64
	RxGaps         int64
	RxDuplicates   int64
	TxTransactions int64
	RxTransactions int64
	PaddingFlits   int64
	CreditStalls   int64
}

// Stats returns a snapshot of the port's counters: a value copy taken at
// call time. The snapshot does not track later protocol activity — take a
// second snapshot and diff with Sub to measure an interval:
//
//	before := p.Stats()
//	// ... run traffic ...
//	window := p.Stats().Sub(before)
func (p *Port) Stats() Stats { return p.stats }

// Sub returns the counter-wise difference s - prev: the protocol activity
// between the two snapshots. The registry adapter (RegisterMetrics) uses it
// to convert absolute snapshots into counter increments.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		TxFrames:       s.TxFrames - prev.TxFrames,
		TxControl:      s.TxControl - prev.TxControl,
		TxReplayed:     s.TxReplayed - prev.TxReplayed,
		RxFrames:       s.RxFrames - prev.RxFrames,
		RxCRCErrors:    s.RxCRCErrors - prev.RxCRCErrors,
		RxGaps:         s.RxGaps - prev.RxGaps,
		RxDuplicates:   s.RxDuplicates - prev.RxDuplicates,
		TxTransactions: s.TxTransactions - prev.TxTransactions,
		RxTransactions: s.RxTransactions - prev.RxTransactions,
		PaddingFlits:   s.PaddingFlits - prev.PaddingFlits,
		CreditStalls:   s.CreditStalls - prev.CreditStalls,
	}
}

// NewPair wires two ports over a bidirectional phy link and returns
// (a, b): a transmits on link.AtoB and receives from link.BtoA; b is the
// mirror image.
func NewPair(k *sim.Kernel, name string, link *phy.Link, cfg Config) (*Port, *Port) {
	a := newPort(k, name+".a", link.AtoB, cfg)
	b := newPort(k, name+".b", link.BtoA, cfg)
	a.peer, b.peer = b, a
	link.AtoB.OnDeliver(b.receive)
	link.BtoA.OnDeliver(a.receive)
	return a, b
}

func newPort(k *sim.Kernel, name string, out *phy.Channel, cfg Config) *Port {
	if cfg.Credits <= 0 || cfg.ReplayBuffer <= 0 || cfg.ReplayTimeout <= 0 {
		panic("llc: invalid config")
	}
	return &Port{
		k:            k,
		name:         name,
		cfg:          cfg,
		out:          out,
		credits:      cfg.Credits,
		replayBuf:    make(map[uint64][]byte),
		creditWaiter: sim.NewSignal(k),
	}
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Credits returns the Tx-side credit count currently available.
func (p *Port) Credits() int { return p.credits }

// Send queues a transaction for transmission. Transactions arriving within
// the same event cascade are packed into common frames. If the transmitter
// is out of credits the transaction waits (backpressure) — Send itself never
// blocks the caller; use SendFrom for process-context flow control.
func (p *Port) Send(t *capi.Transaction) {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("llc: %s: sending invalid transaction: %v", p.name, err))
	}
	p.pending = append(p.pending, t)
	p.scheduleFlush()
}

// SendFrom is like Send but, when the link has a large untransmitted
// backlog, blocks the calling process until credits free up — modelling a
// full Tx queue pushing back into the fabric.
func (p *Port) SendFrom(proc *sim.Proc, t *capi.Transaction) {
	if p.credits <= 0 {
		var tok trace.SpanToken
		if tr := p.k.Tracer(); tr != nil {
			tok = tr.Begin(trace.LayerLLC, "credit_stall", p.k.NowPS())
		}
		for p.credits <= 0 {
			p.stats.CreditStalls++
			p.creditWaiter.Wait(proc)
		}
		if tr := p.k.Tracer(); tr != nil {
			tr.End(tok, p.k.NowPS())
		}
	}
	p.Send(t)
}

func (p *Port) scheduleFlush() {
	if p.flushQueued {
		return
	}
	p.flushQueued = true
	p.k.Schedule(0, p.flush)
}

// flush packs pending transactions into frames and transmits as many as
// credits allow. Incomplete trailing frames are padded (accounted as
// padding flits) and sent immediately rather than waiting for more traffic.
func (p *Port) flush() {
	p.flushQueued = false
	for len(p.pending) > 0 && p.credits > 0 {
		f := &Frame{Kind: kindData, Seq: p.nextSeq}
		flitsLeft := FrameFlits
		for len(p.pending) > 0 && p.credits > 0 {
			t := p.pending[0]
			fl := t.Flits()
			if fl > flitsLeft {
				break
			}
			f.Txns = append(f.Txns, t)
			p.pending = p.pending[1:]
			flitsLeft -= fl
			p.credits--
			p.stats.TxTransactions++
		}
		if len(f.Txns) == 0 {
			break // head transaction blocked on credits
		}
		p.stats.PaddingFlits += int64(flitsLeft)
		p.transmitFrame(f)
	}
}

func (p *Port) transmitFrame(f *Frame) {
	wire := f.Encode()
	p.nextSeq++
	p.replayBuf[f.Seq] = wire
	if f.Seq >= uint64(p.cfg.ReplayBuffer) {
		// Bound the buffer even if the peer stops acking.
		for del := p.oldestKept; del+uint64(p.cfg.ReplayBuffer) <= f.Seq; del++ {
			delete(p.replayBuf, del)
			p.oldestKept = del + 1
		}
	}
	p.stats.TxFrames++
	if tr := p.k.Tracer(); tr != nil {
		tr.Instant(trace.LayerLLC, "tx_frame", p.k.NowPS())
	}
	p.out.Transmit(wire, len(wire))
	p.armTxTimer(f.Seq)
}

// armTxTimer covers tail loss: if a frame is still unacknowledged after the
// replay timeout (e.g. it was the last frame of a burst and was dropped, so
// the receiver never saw a sequence gap), retransmit it proactively.
func (p *Port) armTxTimer(seq uint64) {
	p.k.Schedule(p.cfg.ReplayTimeout, func() {
		if p.oldestKept > seq {
			return // acknowledged
		}
		wire, ok := p.replayBuf[seq]
		if !ok {
			return
		}
		p.stats.TxReplayed++
		p.out.Transmit(wire, len(wire))
		p.armTxTimer(seq)
	})
}

// sendControl emits an in-band single-flit control frame carrying replay
// requests and/or credit returns. Control frames bypass credits and the
// replay buffer (they are idempotent; loss is covered by the timeout).
func (p *Port) sendControl(replayValid bool, replayFrom uint64, credits uint32, cumAck uint64) {
	f := &Frame{
		Kind:         kindControl,
		ReplayValid:  replayValid,
		ReplayFrom:   replayFrom,
		CreditReturn: credits,
		CumAck:       cumAck,
	}
	wire := f.Encode()
	p.stats.TxControl++
	p.out.Transmit(wire, len(wire))
}

// Deliver injects a phy delivery into this port's receive path. NewPair
// installs it on the direct link automatically; switched topologies
// (internal/fabric) re-point the final hop's OnDeliver here.
func (p *Port) Deliver(d phy.Delivery) { p.receive(d) }

// receive handles a phy delivery on the inbound channel.
func (p *Port) receive(d phy.Delivery) {
	wire, ok := d.Payload.([]byte)
	if !ok {
		panic("llc: non-frame payload on channel")
	}
	if d.Corrupted {
		// Emulate line corruption before the CRC check.
		wire = append([]byte(nil), wire...)
		wire[0] ^= 0xFF
	}
	f, err := Decode(wire)
	if err != nil {
		p.stats.RxCRCErrors++
		if tr := p.k.Tracer(); tr != nil {
			tr.Instant(trace.LayerLLC, "rx_crc_error", p.k.NowPS())
		}
		// CRC error: we cannot trust the header, ask for replay from the
		// next expected frame.
		p.requestReplay()
		return
	}
	switch f.Kind {
	case kindControl:
		p.handleControl(f)
	case kindData:
		p.handleData(f)
	}
}

func (p *Port) handleControl(f *Frame) {
	if f.CreditReturn > 0 {
		p.credits += int(f.CreditReturn)
		if p.credits > p.cfg.Credits {
			panic(fmt.Sprintf("llc: %s: credit overflow (%d > %d)", p.name, p.credits, p.cfg.Credits))
		}
		p.creditWaiter.Broadcast()
		p.scheduleFlush()
	}
	// Prune the replay buffer up to the peer's cumulative ack.
	for del := p.oldestKept; del < f.CumAck; del++ {
		delete(p.replayBuf, del)
	}
	if f.CumAck > p.oldestKept {
		p.oldestKept = f.CumAck
	}
	if f.ReplayValid {
		p.replay(f.ReplayFrom)
	}
}

// replay retransmits frames in order starting at from.
func (p *Port) replay(from uint64) {
	if from < p.oldestKept {
		from = p.oldestKept
	}
	for seq := from; seq < p.nextSeq; seq++ {
		wire, ok := p.replayBuf[seq]
		if !ok {
			continue // already acked by a newer CumAck
		}
		p.stats.TxReplayed++
		p.out.Transmit(wire, len(wire))
	}
}

func (p *Port) handleData(f *Frame) {
	p.stats.RxFrames++
	switch {
	case f.Seq == p.expected:
		p.expected++
		p.cancelReplayTimer()
		if p.replaySpan != 0 {
			// In-order delivery resumed: the replay window closes.
			if tr := p.k.Tracer(); tr != nil {
				tr.End(p.replaySpan, p.k.NowPS())
			}
			p.replaySpan = 0
		}
		p.replayAsked = false
		for _, t := range f.Txns {
			if t.Op == capi.OpNop {
				continue
			}
			p.stats.RxTransactions++
			p.pendingCred++
			if p.OnReceive != nil {
				p.OnReceive(t)
			}
		}
		p.scheduleCreditReturn()
	case f.Seq > p.expected:
		p.stats.RxGaps++
		if tr := p.k.Tracer(); tr != nil {
			tr.Instant(trace.LayerLLC, "rx_gap", p.k.NowPS())
		}
		p.requestReplay()
	default:
		// Duplicate from a replay we already consumed.
		p.stats.RxDuplicates++
		p.scheduleCreditReturn() // refresh CumAck so the peer prunes
	}
}

// requestReplay asks the peer to retransmit from the next expected frame.
// Repeated triggers within one outage coalesce; a timer covers the loss of
// the request itself.
func (p *Port) requestReplay() {
	if p.replayAsked {
		return
	}
	p.replayAsked = true
	if p.replaySpan == 0 {
		// Open the replay-window span; timer-driven re-requests within the
		// same outage keep the original span running.
		if tr := p.k.Tracer(); tr != nil {
			p.replaySpan = tr.Begin(trace.LayerLLC, "replay", p.k.NowPS())
		}
	}
	p.sendControl(true, p.expected, p.takeCredits(), p.expected)
	p.armReplayTimer()
}

func (p *Port) armReplayTimer() {
	p.cancelReplayTimer()
	p.replayTimer = p.k.Schedule(p.cfg.ReplayTimeout, func() {
		p.replayTimer = nil
		p.replayAsked = false
		p.requestReplay()
	})
}

func (p *Port) cancelReplayTimer() {
	if p.replayTimer != nil {
		p.replayTimer.Cancel()
		p.replayTimer = nil
	}
}

func (p *Port) takeCredits() uint32 {
	c := p.pendingCred
	p.pendingCred = 0
	return c
}

// scheduleCreditReturn batches credit returns accumulated within one event
// cascade into a single control frame.
func (p *Port) scheduleCreditReturn() {
	if p.credQueued {
		return
	}
	p.credQueued = true
	p.k.Schedule(0, func() {
		p.credQueued = false
		if p.pendingCred == 0 && !p.replayAsked {
			p.sendControl(false, 0, 0, p.expected)
			return
		}
		p.sendControl(false, 0, p.takeCredits(), p.expected)
	})
}
