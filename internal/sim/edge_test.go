package sim

import "testing"

func TestCancelDuringCascade(t *testing.T) {
	// An event scheduled for the same instant can be cancelled by an
	// earlier event in the cascade.
	k := NewKernel()
	fired := false
	var victim *Event
	k.Schedule(Nanosecond, func() { victim.Cancel() })
	victim = k.Schedule(Nanosecond, func() { fired = true })
	k.Run()
	if fired {
		t.Fatal("event fired despite same-instant cancellation")
	}
}

func TestStopThenRunResumes(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 5; i++ {
		k.Schedule(Time(i)*Nanosecond, func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("count after stop = %d", count)
	}
	k.Run() // resumes the remaining events
	if count != 5 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestZeroSleepYields(t *testing.T) {
	// Sleep(0) must let same-instant events run before the process
	// continues (a cooperative yield).
	k := NewKernel()
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilExactEventTime(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(10*Nanosecond, func() { fired = true })
	k.RunUntil(10 * Nanosecond)
	if !fired {
		t.Fatal("event at the limit did not fire (limit is inclusive)")
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	k.Schedule(Nanosecond, func() {})
	k.Schedule(2*Nanosecond, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("pending after run = %d", k.Pending())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	defer func() {
		if recover() == nil {
			t.Fatal("negative waitgroup did not panic")
		}
	}()
	wg.Add(-1)
}

func TestSignalCrossKernelPanics(t *testing.T) {
	k1, k2 := NewKernel(), NewKernel()
	s := NewSignal(k1)
	panicked := false
	k2.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		s.Wait(p)
	})
	k2.Run()
	if !panicked {
		t.Fatal("cross-kernel Wait did not panic")
	}
}

func TestResourceZeroCapacityTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 0)
	if r.TryAcquire(1) {
		t.Fatal("acquired from zero-capacity resource")
	}
	if !r.TryAcquire(0) {
		t.Fatal("zero-unit acquire should trivially succeed")
	}
	if r.Utilization() != 0 {
		t.Fatal("zero-capacity utilization should be 0")
	}
}
