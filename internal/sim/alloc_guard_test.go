package sim

import "testing"

// kernelAllocBudget is the regression ceiling for one full
// BenchmarkKernelScheduleRun iteration (100k self-rescheduled events plus a
// 64-event standing population on a fresh kernel): the event free list must
// keep steady-state dispatch allocation-free, leaving only kernel
// construction, heap growth, and the initial event population.
const kernelAllocBudget = 85

// TestKernelAllocRegression pins the single-shard hot path: the sharding
// refactor (ScheduleAt -> schedule, the (at, schedAt, seq) order, NextAt /
// RunBefore) must not add allocations to the sequential kernel loop.
func TestKernelAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	const events = 100_000
	allocs := testing.AllocsPerRun(3, func() {
		k := NewKernel()
		fired := 0
		var step func()
		step = func() {
			fired++
			if fired < events {
				k.Schedule(Time(fired%7)*Nanosecond, step)
			}
		}
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)*Nanosecond, func() {})
		}
		k.Schedule(0, step)
		k.Run()
		if fired != events {
			t.Fatalf("fired %d events, want %d", fired, events)
		}
	})
	if allocs > kernelAllocBudget {
		t.Fatalf("kernel schedule/run workload allocated %.0f times, budget %d", allocs, kernelAllocBudget)
	}
}

// TestKernelWindowedAllocRegression applies the same budget to the windowed
// (RunBefore) stepping: per-window NextAt/RunBefore coordination must be
// allocation-free too.
func TestKernelWindowedAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	const events = 100_000
	allocs := testing.AllocsPerRun(3, func() {
		k := NewKernel()
		fired := 0
		var step func()
		step = func() {
			fired++
			if fired < events {
				k.Schedule(Time(fired%7)*Nanosecond, step)
			}
		}
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)*Nanosecond, func() {})
		}
		k.Schedule(0, step)
		for {
			at, ok := k.NextAt()
			if !ok {
				break
			}
			k.RunBefore(at + 50*Nanosecond)
		}
		if fired != events {
			t.Fatalf("fired %d events, want %d", fired, events)
		}
	})
	if allocs > kernelAllocBudget {
		t.Fatalf("windowed kernel workload allocated %.0f times, budget %d", allocs, kernelAllocBudget)
	}
}
