package sim

// Resource is a counted resource (e.g. CPU cores, queue slots, credits) that
// processes acquire and release. Acquisition is strictly FIFO: a large
// request at the head of the queue blocks later small requests, which
// prevents starvation of bulk acquirers.
//
// Resource also tracks a utilization integral so models can report average
// occupancy over a measurement window (used for the "utilized CPU cores"
// metric in the VoltDB experiments).
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int

	waiters []resWaiter

	lastChange Time
	busyPS     float64 // integral of inUse over time, in unit*ps
	statStart  Time
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity on kernel k.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity < 0 {
		panic("sim: negative resource capacity")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

func (r *Resource) accountTo(t Time) {
	r.busyPS += float64(r.inUse) * float64(t-r.lastChange)
	r.lastChange = t
}

// Acquire blocks the calling process until n units are available, then takes
// them. n must not exceed capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic("sim: Acquire exceeds resource capacity")
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accountTo(r.k.now)
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.park()
}

// TryAcquire takes n units if they are available immediately, reporting
// whether it succeeded. It never blocks and never jumps the FIFO queue.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(r.waiters) > 0 || r.inUse+n > r.capacity {
		return false
	}
	r.accountTo(r.k.now)
	r.inUse += n
	return true
}

// Release returns n units and hands them to queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.accountTo(r.k.now)
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Release of more units than acquired")
	}
	r.dispatch()
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.accountTo(r.k.now)
		r.inUse += w.n
		p := w.p
		r.k.Schedule(0, func() { p.step() })
	}
}

// QueueLen reports the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// ResetStats restarts the utilization integral at the current time.
func (r *Resource) ResetStats() {
	r.accountTo(r.k.now)
	r.busyPS = 0
	r.statStart = r.k.now
}

// MeanOccupancy returns the time-averaged number of units in use since the
// last ResetStats (or since creation).
func (r *Resource) MeanOccupancy() float64 {
	r.accountTo(r.k.now)
	window := float64(r.k.now - r.statStart)
	if window <= 0 {
		return 0
	}
	return r.busyPS / window
}

// Utilization returns MeanOccupancy divided by capacity, in [0,1].
func (r *Resource) Utilization() float64 {
	if r.capacity == 0 {
		return 0
	}
	return r.MeanOccupancy() / float64(r.capacity)
}
