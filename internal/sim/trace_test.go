package sim

import (
	"testing"

	"thymesisflow/internal/trace"
)

// TestKernelTraceDispatch checks the kernel's per-event emissions: one
// dispatch span covering schedule->fire and one queue-depth sample per fired
// event, all on the sim layer.
func TestKernelTraceDispatch(t *testing.T) {
	k := NewKernel()
	ring := trace.NewRing(64)
	k.SetTracer(ring)
	ran := 0
	k.Schedule(5*Nanosecond, func() { ran++ })
	k.Schedule(10*Nanosecond, func() { ran++ })
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	var spans, counters int
	for _, e := range ring.Snapshot() {
		if e.Layer != trace.LayerSim {
			t.Fatalf("unexpected layer %q", e.Layer)
		}
		switch e.Ph {
		case trace.PhaseSpan:
			if e.Name != "dispatch" {
				t.Fatalf("span name = %q", e.Name)
			}
			if e.TS != 0 || e.Dur <= 0 {
				t.Fatalf("dispatch span ts=%d dur=%d, want ts=0 dur>0", e.TS, e.Dur)
			}
			spans++
		case trace.PhaseCounter:
			if e.Name != "queue_depth" {
				t.Fatalf("counter name = %q", e.Name)
			}
			counters++
		}
	}
	if spans != 2 || counters != 2 {
		t.Fatalf("spans=%d counters=%d, want 2 and 2", spans, counters)
	}
}

// TestKernelNilTracerZeroAllocs asserts the disabled-tracing hot path stays
// allocation-free: with a warmed kernel (grown heap, populated free list) a
// self-rescheduling event chain must not allocate at all, so attaching the
// trace hooks costs untraced simulations nothing (ISSUE: 0 extra allocs vs
// the PR-1 baseline).
func TestKernelNilTracerZeroAllocs(t *testing.T) {
	k := NewKernel()
	const events = 1000
	fired := 0
	var step func()
	step = func() {
		fired++
		if fired < events {
			k.Schedule(Time(fired%7)*Nanosecond, step)
		}
	}
	run := func() {
		fired = 0
		k.Schedule(0, step)
		k.Run()
	}
	run() // warm the heap and the event free list

	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Fatalf("nil-tracer kernel path allocates %.1f allocs/run, want 0", allocs)
	}
}

// BenchmarkKernelScheduleRunTraced is BenchmarkKernelScheduleRun with a ring
// recorder attached: the cost of tracing when it is ON. Compare against
// BenchmarkKernelScheduleRun (which must stay at its untraced baseline).
func BenchmarkKernelScheduleRunTraced(b *testing.B) {
	const events = 100_000
	ring := trace.NewRing(trace.DefaultRingCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		k.SetTracer(ring)
		fired := 0
		var step func()
		step = func() {
			fired++
			if fired < events {
				k.Schedule(Time(fired%7)*Nanosecond, step)
			}
		}
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)*Nanosecond, func() {})
		}
		k.Schedule(0, step)
		k.Run()
		if fired != events {
			b.Fatalf("fired %d events, want %d", fired, events)
		}
	}
}
