package sim

import "testing"

// BenchmarkKernelScheduleRun drives the kernel hot path: schedule 1e5
// events in a mixed past/future pattern and drain them. The allocs/op
// figure tracks the event free list; ns/op tracks the 4-ary heap.
func BenchmarkKernelScheduleRun(b *testing.B) {
	const events = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		fired := 0
		// A self-rescheduling chain exercises steady-state recycling: each
		// fired event schedules its successor, the way Proc.Sleep and the
		// pipe/resource timers drive the kernel in real experiments.
		var step func()
		step = func() {
			fired++
			if fired < events {
				k.Schedule(Time(fired%7)*Nanosecond, step)
			}
		}
		// Seed a modest standing population so the heap has depth.
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)*Nanosecond, func() {})
		}
		k.Schedule(0, step)
		k.Run()
		if fired != events {
			b.Fatalf("fired %d events, want %d", fired, events)
		}
	}
}

// BenchmarkKernelScheduleBurst measures the bulk schedule-then-drain
// pattern: all events queued up front, then one Run.
func BenchmarkKernelScheduleBurst(b *testing.B) {
	const events = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		fired := 0
		for j := 0; j < events; j++ {
			k.Schedule(Time(j%1024)*Nanosecond, func() { fired++ })
		}
		k.Run()
		if fired != events {
			b.Fatalf("fired %d events, want %d", fired, events)
		}
	}
}

// BenchmarkKernelCancel measures the schedule-then-cancel pattern used by
// timeout guards (arm a timer, cancel it when the response arrives).
func BenchmarkKernelCancel(b *testing.B) {
	const events = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < events; j++ {
			e := k.Schedule(Time(j%512)*Nanosecond, func() {})
			if j%2 == 0 {
				e.Cancel()
			}
		}
		k.Run()
	}
}
