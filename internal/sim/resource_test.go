package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceAcquireRelease(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(10 * Nanosecond)
			r.Release(1)
		})
	}
	k.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d acquisitions, want 4", len(order))
	}
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: inUse=%d", r.InUse())
	}
	// First two get in immediately at t=0; the rest at t=10ns in FIFO order.
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v", order, want)
		}
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 4)
	var order []string
	k.Go("hog", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * Nanosecond)
		r.Release(3)
	})
	k.Go("big", func(p *Proc) {
		p.Sleep(Nanosecond)
		r.Acquire(p, 4) // needs everything; queues first
		order = append(order, "big")
		r.Release(4)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(2 * Nanosecond)
		r.Acquire(p, 1) // could fit now, but must not jump the big waiter
		order = append(order, "small")
		r.Release(1)
	})
	k.Run()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("order = %v, want big before small (FIFO, no starvation)", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire on exhausted resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceMeanOccupancy(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 4)
	k.Go("w", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(50 * Nanosecond)
		r.Release(2)
		p.Sleep(50 * Nanosecond)
	})
	k.Run()
	// 2 units held for half of 100ns => mean occupancy 1.0
	got := r.MeanOccupancy()
	if got < 0.99 || got > 1.01 {
		t.Fatalf("mean occupancy = %v, want ~1.0", got)
	}
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want ~0.25", u)
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	k := NewKernel()
	r := NewResource(k, 1)
	r.Release(1)
}

// Property: capacity is never exceeded regardless of the acquire/release
// pattern, and all work completes (no deadlock) when requests fit capacity.
func TestQuickResourceCapacityInvariant(t *testing.T) {
	f := func(seeds []uint8) bool {
		k := NewKernel()
		const capacity = 5
		r := NewResource(k, capacity)
		ok := true
		completed := 0
		for _, s := range seeds {
			n := int(s%capacity) + 1
			hold := Time(s) * Nanosecond
			k.Go("w", func(p *Proc) {
				r.Acquire(p, n)
				if r.InUse() > capacity {
					ok = false
				}
				p.Sleep(hold)
				r.Release(n)
				completed++
			})
		}
		k.Run()
		return ok && completed == len(seeds) && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeSerializesTransfers(t *testing.T) {
	k := NewKernel()
	pp := NewPipe(k, 1e9) // 1 GB/s => 1 byte per ns
	s1, d1 := pp.Reserve(1000)
	s2, d2 := pp.Reserve(500)
	if s1 != 0 || d1 != 1000*Nanosecond {
		t.Fatalf("first transfer [%v,%v], want [0,1000ns]", s1, d1)
	}
	if s2 != d1 || d2 != 1500*Nanosecond {
		t.Fatalf("second transfer [%v,%v], want [1000ns,1500ns]", s2, d2)
	}
	if pp.TotalBytes() != 1500 {
		t.Fatalf("total bytes = %d, want 1500", pp.TotalBytes())
	}
}

func TestPipeThroughputAccounting(t *testing.T) {
	k := NewKernel()
	pp := NewPipe(k, 1e9)
	k.Go("tx", func(p *Proc) {
		for i := 0; i < 10; i++ {
			_, done := pp.Reserve(100)
			p.Sleep(done - p.Now())
		}
	})
	k.Run()
	// 1000 bytes in 1000ns => 1 GB/s
	tp := pp.Throughput()
	if tp < 0.99e9 || tp > 1.01e9 {
		t.Fatalf("throughput = %v, want ~1e9", tp)
	}
	if u := pp.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestPipeIdleGapNotCounted(t *testing.T) {
	k := NewKernel()
	pp := NewPipe(k, 1e9)
	k.Go("tx", func(p *Proc) {
		pp.Reserve(100)
		p.Sleep(1000 * Nanosecond) // long idle gap
		_, done := pp.Reserve(100)
		if done-p.Now() != 100*Nanosecond {
			t.Errorf("transfer after idle took %v, want 100ns", done-p.Now())
		}
	})
	k.Run()
	if u := pp.Utilization(); u > 0.3 {
		t.Fatalf("utilization = %v, want ~0.2 (idle time excluded from busy)", u)
	}
}
