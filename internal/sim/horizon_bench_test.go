package sim

import "testing"

// BenchmarkKernelRunBeforeWindows measures the run-to-horizon stepping the
// shard runtime drives: the same self-rescheduling workload as
// BenchmarkKernelScheduleRun, but advanced in lookahead-sized windows
// (RunBefore + NextAt per window) instead of one Run. The delta against
// BenchmarkKernelScheduleRun is the per-window coordination overhead a
// single shard pays.
func BenchmarkKernelRunBeforeWindows(b *testing.B) {
	const events = 100_000
	const window = 50 * Nanosecond // the fabric lookahead
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		fired := 0
		var step func()
		step = func() {
			fired++
			if fired < events {
				k.Schedule(Time(fired%7)*Nanosecond, step)
			}
		}
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)*Nanosecond, func() {})
		}
		k.Schedule(0, step)
		windows := 0
		for {
			t, ok := k.NextAt()
			if !ok {
				break
			}
			k.RunBefore(t + window)
			windows++
		}
		if fired != events {
			b.Fatalf("fired %d events, want %d", fired, events)
		}
		b.ReportMetric(float64(events)/float64(windows), "events/window")
	}
}

// BenchmarkKernelEmptyWindow measures the cost of a window that dispatches
// nothing — the NextAt/RunBefore probe the group coordinator pays per shard
// per window when a shard has no work inside the horizon.
func BenchmarkKernelEmptyWindow(b *testing.B) {
	k := NewKernel()
	k.Schedule(Time(1)*Second, func() {}) // far-future standing event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := k.NextAt(); !ok {
			b.Fatal("queue unexpectedly empty")
		}
		k.RunBefore(Time(i%1000) * Nanosecond)
	}
}
