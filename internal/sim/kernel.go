package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Cancel it with Cancel before it fires if it
// is no longer wanted.
type Event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index; -1 once popped or cancelled
	cancled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancled = true }

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive: a virtual clock plus an
// event queue ordered by (time, insertion sequence). The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	pq      eventHeap
	seq     uint64
	procs   int // live processes (for leak detection)
	stopped bool
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. Events scheduled for the same instant fire in insertion order.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time t. Scheduling in the
// past panics: it would silently corrupt causality.
func (k *Kernel) ScheduleAt(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is in the past (now=%v)", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.pq, e)
	return e
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (k *Kernel) Run() Time {
	return k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= limit, then sets the clock to
// limit if any events remain beyond it (or leaves it at the last executed
// event otherwise). It returns the final virtual time.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && len(k.pq) > 0 {
		if k.pq[0].at > limit {
			k.now = limit
			return k.now
		}
		e := heap.Pop(&k.pq).(*Event)
		if e.cancled {
			continue
		}
		k.now = e.at
		e.fn()
	}
	return k.now
}

// Pending reports the number of events still queued (including cancelled
// events that have not yet been popped).
func (k *Kernel) Pending() int { return len(k.pq) }
