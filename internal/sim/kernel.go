package sim

import (
	"fmt"

	"thymesisflow/internal/trace"
)

// Event is a scheduled callback. Cancel it with Cancel before it fires if it
// is no longer wanted.
//
// Event structs are recycled: once an event has fired (or been dropped after
// cancellation) the kernel may reuse its storage for a later Schedule call.
// A handle is therefore only valid until the event fires or is cancelled —
// the idiomatic pattern (see llc.Port's replay timer) is to nil the stored
// handle inside the callback and to never touch a handle afterwards.
// Cancelling an already-fired, not-yet-recycled event remains a no-op.
type Event struct {
	at        Time
	schedAt   Time // time Schedule was called (dispatch-latency tracing)
	seq       uint64
	fn        func()
	heapPos   int32 // position in the 4-ary heap; -1 once popped
	cancelled bool
	k         *Kernel
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event stays queued until its
// deadline (lazy deletion) but its callback will not run and Pending no
// longer counts it.
func (e *Event) Cancel() {
	if e.cancelled || e.heapPos < 0 {
		return
	}
	e.cancelled = true
	e.fn = nil // release the closure eagerly
	e.k.cancelledQueued++
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Kernel is a discrete-event simulation executive: a virtual clock plus an
// event queue ordered by (time, insertion sequence). The zero value is not
// usable; construct with NewKernel.
//
// The event queue is an inlined 4-ary heap: compared with container/heap's
// binary heap it halves the tree depth, touches fewer cache lines per
// sift, and avoids the interface-boxed Push/Pop round trips. Fired events
// are recycled through a free list, so steady-state scheduling does not
// allocate.
type Kernel struct {
	now             Time
	pq              []*Event
	seq             uint64
	executed        uint64 // events fired (excludes cancelled)
	procs           int    // live processes (for leak detection)
	stopped         bool
	cancelledQueued int      // cancelled events still in pq (lazy deletion)
	free            []*Event // recycled Event structs

	// tracer, when non-nil, receives a dispatch span and a queue-depth
	// sample per fired event; datapath components reach it through
	// Tracer(). The nil path costs one load+compare and zero allocations
	// (asserted by TestKernelNilTracerZeroAllocs).
	tracer trace.Tracer
}

// SetTracer attaches a tracer to the kernel; components built on this
// kernel pick it up through Tracer() on their next emission, so a tracer
// may be attached (or detached with nil) at any point of a run.
func (k *Kernel) SetTracer(tr trace.Tracer) { k.tracer = tr }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (k *Kernel) Tracer() trace.Tracer { return k.tracer }

// NowPS returns the current virtual time in picoseconds. Together with
// Tracer it makes *Kernel a trace.Source for kernel-less components.
func (k *Kernel) NowPS() int64 { return int64(k.now) }

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. Events scheduled for the same instant fire in insertion order.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time t. Scheduling in the
// past panics: it would silently corrupt causality.
func (k *Kernel) ScheduleAt(t Time, fn func()) *Event {
	return k.schedule(t, k.now, fn)
}

// InjectAt splices an externally originated event into the queue: fn runs at
// absolute time t, but sorts among same-instant events by `from`, the virtual
// time the originating kernel sent it. The shard runtime uses this to place a
// cross-kernel delivery exactly where a shared-kernel run would have ordered
// it (deliveries are scheduled at their transmit time in a sequential run).
// `from` may be earlier than this kernel's clock; t may not.
func (k *Kernel) InjectAt(t, from Time, fn func()) *Event {
	if from > t {
		panic(fmt.Sprintf("sim: InjectAt origin %v after delivery %v", from, t))
	}
	return k.schedule(t, from, fn)
}

func (k *Kernel) schedule(t, from Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is in the past (now=%v)", t, k.now))
	}
	k.seq++
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		// Field-wise reset: a whole-struct literal assignment compiles to a
		// bulk typed copy (with write barriers for the pointer fields) that
		// measurably slows the scheduling hot path.
		e.at = t
		e.schedAt = from
		e.seq = k.seq
		e.fn = fn
		e.heapPos = 0
		e.cancelled = false
		e.k = k
	} else {
		e = &Event{at: t, schedAt: from, seq: k.seq, fn: fn, k: k}
	}
	k.heapPush(e)
	return e
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (k *Kernel) Run() Time {
	return k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= limit, then sets the clock to
// limit if any events remain beyond it (or leaves it at the last executed
// event otherwise). It returns the final virtual time.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && len(k.pq) > 0 {
		if k.pq[0].at > limit {
			k.now = limit
			return k.now
		}
		e := k.heapPop()
		if e.cancelled {
			k.cancelledQueued--
			k.recycle(e)
			continue
		}
		k.now = e.at
		if tr := k.tracer; tr != nil {
			// The dispatch span covers the event's queue residency
			// (schedule -> fire); the counter samples queue depth as seen
			// at the moment this event left the heap.
			tr.Span(trace.LayerSim, "dispatch", int64(e.schedAt), int64(e.at))
			tr.Counter(trace.LayerSim, "queue_depth", int64(e.at), float64(len(k.pq)))
		}
		fn := e.fn
		fn()
		k.executed++
		k.recycle(e)
	}
	return k.now
}

// maxFree caps the free list. Steady-state simulations recycle through a
// small working set; after a one-shot burst drains, retaining every dead
// event would only inflate the GC-scanned heap, so the excess is dropped.
const maxFree = 4096

// recycle returns a popped event to the free list.
func (k *Kernel) recycle(e *Event) {
	if len(k.free) >= maxFree {
		return
	}
	e.fn = nil
	e.k = nil
	k.free = append(k.free, e)
}

// Pending reports the number of events still queued and due to fire.
// Cancelled events awaiting lazy removal from the queue are not counted.
func (k *Kernel) Pending() int { return len(k.pq) - k.cancelledQueued }

// Scheduled reports the total number of events ever scheduled on this
// kernel (including cancelled ones). Summed across a shard group it equals
// the sequential run's count, since a cross-kernel delivery costs one
// scheduled event either way.
func (k *Kernel) Scheduled() uint64 { return k.seq }

// Executed reports the number of events that have fired on this kernel
// (cancelled events are excluded). The shard runtime reads it per window to
// attribute work across shards.
func (k *Kernel) Executed() uint64 { return k.executed }

// NextAt reports the timestamp of the earliest live event, discarding any
// cancelled events sitting on top of the heap. ok is false when no live
// event is queued. The shard coordinator uses it to pick the next window.
func (k *Kernel) NextAt() (t Time, ok bool) {
	for len(k.pq) > 0 {
		top := k.pq[0]
		if !top.cancelled {
			return top.at, true
		}
		k.heapPop()
		k.cancelledQueued--
		k.recycle(top)
	}
	return 0, false
}

// RunBefore executes events with timestamps strictly below limit and leaves
// the clock at the last executed event (it never advances the clock to
// limit: events at or beyond the horizon belong to a later window, possibly
// interleaved with injected deliveries that sort before them). It returns
// the current virtual time.
func (k *Kernel) RunBefore(limit Time) Time {
	k.stopped = false
	for !k.stopped && len(k.pq) > 0 {
		if k.pq[0].at >= limit {
			break
		}
		e := k.heapPop()
		if e.cancelled {
			k.cancelledQueued--
			k.recycle(e)
			continue
		}
		k.now = e.at
		if tr := k.tracer; tr != nil {
			tr.Span(trace.LayerSim, "dispatch", int64(e.schedAt), int64(e.at))
			tr.Counter(trace.LayerSim, "queue_depth", int64(e.at), float64(len(k.pq)))
		}
		fn := e.fn
		fn()
		k.executed++
		k.recycle(e)
	}
	return k.now
}

// AdvanceTo moves the clock forward to t without executing anything. It is
// the shard runtime's end-of-run alignment (mirroring how RunUntil parks the
// clock at its limit) and panics if events earlier than t are still queued.
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if at, ok := k.NextAt(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event at %v", t, at))
	}
	k.now = t
}

// The event queue: an inlined 4-ary min-heap on (at, schedAt, seq).
// Children of node i live at 4i+1..4i+4; the parent of node i is (i-1)/4.
//
// schedAt participates in the order so that injected cross-kernel events
// (whose schedAt is their remote transmit time) interleave with local
// same-instant events exactly as a single shared kernel would have ordered
// them. For locally scheduled events schedAt is non-decreasing in seq (the
// clock never moves backwards), so on a single kernel this order is
// identical to the historical (at, seq) order.

func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e *Event) {
	i := len(k.pq)
	k.pq = append(k.pq, e)
	// Sift up.
	for i > 0 {
		parent := (i - 1) / 4
		p := k.pq[parent]
		if !eventBefore(e, p) {
			break
		}
		k.pq[i] = p
		p.heapPos = int32(i)
		i = parent
	}
	k.pq[i] = e
	e.heapPos = int32(i)
}

func (k *Kernel) heapPop() *Event {
	top := k.pq[0]
	top.heapPos = -1
	n := len(k.pq) - 1
	last := k.pq[n]
	k.pq[n] = nil
	k.pq = k.pq[:n]
	if n > 0 {
		k.siftDown(last)
	}
	return top
}

// siftDown places e, displaced from the tail, starting at the root.
func (k *Kernel) siftDown(e *Event) {
	pq := k.pq
	n := len(pq)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(pq[c], pq[min]) {
				min = c
			}
		}
		if !eventBefore(pq[min], e) {
			break
		}
		pq[i] = pq[min]
		pq[i].heapPos = int32(i)
		i = min
	}
	pq[i] = e
	e.heapPos = int32(i)
}
