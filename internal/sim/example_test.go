package sim_test

import (
	"fmt"

	"thymesisflow/internal/sim"
)

// Example shows the kernel's core primitives: processes, sleeping, and a
// shared resource.
func Example() {
	k := sim.NewKernel()
	cores := sim.NewResource(k, 1)
	for _, name := range []string{"alpha", "beta"} {
		name := name
		k.Go(name, func(p *sim.Proc) {
			cores.Acquire(p, 1)
			p.Sleep(10 * sim.Microsecond)
			fmt.Printf("%s done at %v\n", name, p.Now())
			cores.Release(1)
		})
	}
	k.Run()
	// Output:
	// alpha done at 10us
	// beta done at 20us
}

// ExamplePipe prices serialized transfers over a bandwidth-limited link.
func ExamplePipe() {
	k := sim.NewKernel()
	link := sim.NewPipe(k, 12.5*(1<<30)) // one ThymesisFlow channel
	_, first := link.Reserve(1 << 20)
	_, second := link.Reserve(1 << 20)
	fmt.Printf("second transfer finishes at exactly 2x the first: %v\n", second == 2*first)
	// Output:
	// second transfer finishes at exactly 2x the first: true
}
