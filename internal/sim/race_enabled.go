//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; allocation
// regression guards skip under it (instrumentation changes alloc counts).
const raceEnabled = true
