package sim

// Pipe models a serial, work-conserving transmission resource: a link, a bus
// or a memory channel with a fixed byte rate. Transfers are serialized FIFO;
// a transfer of n bytes occupies the pipe for n/rate seconds. Reserve is a
// pure timing calculation — it does not block — so it can be called from both
// event and process context. Callers that want flow control combine Reserve
// with Proc.Sleep until the returned completion time.
type Pipe struct {
	k           *Kernel
	bytesPerSec float64
	busyUntil   Time

	totalBytes int64
	busyPS     float64
	statStart  Time
	lastStart  Time
}

// NewPipe returns a pipe with the given rate in bytes per second.
func NewPipe(k *Kernel, bytesPerSec float64) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe rate must be positive")
	}
	return &Pipe{k: k, bytesPerSec: bytesPerSec}
}

// Rate returns the pipe's configured rate in bytes per second.
func (pp *Pipe) Rate() float64 { return pp.bytesPerSec }

// Reserve enqueues a transfer of n bytes starting no earlier than the
// current time and returns (start, done): the time the transfer begins
// transmission and the time its last byte leaves the pipe.
func (pp *Pipe) Reserve(n int64) (start, done Time) {
	now := pp.k.now
	start = now
	if pp.busyUntil > start {
		start = pp.busyUntil
	}
	d := DurationForBytes(n, pp.bytesPerSec)
	done = start + d
	pp.busyPS += float64(d)
	pp.busyUntil = done
	pp.totalBytes += n
	return start, done
}

// Backlog returns how far in the future the pipe is already committed.
func (pp *Pipe) Backlog() Time {
	if pp.busyUntil <= pp.k.now {
		return 0
	}
	return pp.busyUntil - pp.k.now
}

// ResetStats restarts throughput accounting at the current time.
func (pp *Pipe) ResetStats() {
	pp.totalBytes = 0
	pp.busyPS = 0
	pp.statStart = pp.k.now
}

// TotalBytes returns the bytes reserved since the last ResetStats.
func (pp *Pipe) TotalBytes() int64 { return pp.totalBytes }

// Throughput returns achieved bytes/sec since the last ResetStats.
func (pp *Pipe) Throughput() float64 {
	window := float64(pp.k.now - pp.statStart)
	if window <= 0 {
		return 0
	}
	return float64(pp.totalBytes) / (window / float64(Second))
}

// Utilization returns the fraction of time the pipe was transmitting since
// the last ResetStats, in [0, 1] (may exceed 1 transiently if reservations
// extend beyond "now").
func (pp *Pipe) Utilization() float64 {
	window := float64(pp.k.now - pp.statStart)
	if window <= 0 {
		return 0
	}
	return pp.busyPS / window
}
