package sim

import "testing"

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 100*Nanosecond {
		t.Fatalf("woke at %v, want 100ns", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10 * Nanosecond)
					order = append(order, name)
				}
			})
		}
		k.Run()
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// Same-instant wakeups preserve spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woken := 0
	for i := 0; i < 4; i++ {
		k.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(50 * Nanosecond)
		if s.Waiters() != 4 {
			t.Errorf("waiters = %d, want 4", s.Waiters())
		}
		s.Broadcast()
	})
	k.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestSignalWakeOne(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(Nanosecond)
		if !s.Wake() {
			t.Error("Wake returned false with waiters present")
		}
	})
	k.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	if s.Waiters() != 2 {
		t.Fatalf("remaining waiters = %d, want 2", s.Waiters())
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		i := i
		k.Go("worker", func(p *Proc) {
			p.Sleep(Time(i) * 10 * Nanosecond)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 30*Nanosecond {
		t.Fatalf("WaitGroup released at %v, want 30ns", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	passed := false
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p) // must not block
		passed = true
	})
	k.Run()
	if !passed {
		t.Fatal("Wait on zero WaitGroup blocked forever")
	}
}
