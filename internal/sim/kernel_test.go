package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	k.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	k.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	end := k.Run()
	if end != 30*Nanosecond {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestKernelTieBreaksByInsertionOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Nanosecond, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(Nanosecond, func() {
		k.Schedule(Nanosecond, func() {
			fired++
			if k.Now() != 2*Nanosecond {
				t.Errorf("nested event at %v, want 2ns", k.Now())
			}
		})
	})
	k.Run()
	if fired != 1 {
		t.Fatalf("nested event fired %d times, want 1", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(Nanosecond, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	k := NewKernel()
	events := make([]*Event, 5)
	for i := range events {
		events[i] = k.Schedule(Time(i+1)*Nanosecond, func() {})
	}
	if got := k.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	events[1].Cancel()
	events[3].Cancel()
	if got := k.Pending(); got != 3 {
		t.Fatalf("Pending after 2 cancels = %d, want 3 (cancelled events must not count)", got)
	}
	// Double-cancel must not double-count.
	events[1].Cancel()
	if got := k.Pending(); got != 3 {
		t.Fatalf("Pending after double cancel = %d, want 3", got)
	}
	k.Run()
	if got := k.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel()
	fired := 0
	e := k.Schedule(Nanosecond, func() { fired++ })
	k.Run()
	e.Cancel() // already fired: must be a no-op and must not corrupt Pending
	if got := k.Pending(); got != 0 {
		t.Fatalf("Pending = %d after cancelling a fired event, want 0", got)
	}
	later := k.Schedule(Nanosecond, func() { fired++ })
	_ = later
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stale cancel must not suppress later events)", fired)
	}
}

// TestEventRecyclingPreservesOrder drives enough schedule/fire cycles that
// the free list is exercised heavily, and checks ordering plus tie-break
// semantics survive recycling.
func TestEventRecyclingPreservesOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	n := 0
	var step func()
	step = func() {
		got = append(got, k.Now())
		if n++; n < 5000 {
			k.Schedule(Time(n%13)*Nanosecond, step)
		}
	}
	k.Schedule(0, step)
	k.Run()
	if len(got) != 5000 {
		t.Fatalf("fired %d events, want 5000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, got[i], got[i-1])
		}
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d * Nanosecond
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(25 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 25ns, want 2", len(fired))
	}
	if k.Now() != 25*Nanosecond {
		t.Fatalf("clock = %v after RunUntil(25ns)", k.Now())
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i)*Nanosecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		k.ScheduleAt(5*Nanosecond, func() {})
	})
	k.Run()
}

func TestNegativeDelayClampedToZero(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(-5*Nanosecond, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, k.Now())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.Schedule(Time(d)*Nanosecond, func() { times = append(times, k.Now()) })
		}
		k.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{950 * Nanosecond, "950ns"},
		{600 * Microsecond, "600us"},
		{2 * Second, "2s"},
		{-3 * Nanosecond, "-3ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationForBytes(t *testing.T) {
	// 12.5 GiB/s, 128 bytes => 128/12.5GiB s ~ 9.54ns
	d := DurationForBytes(128, 12.5*1024*1024*1024)
	if d < 9*Nanosecond || d > 10*Nanosecond {
		t.Fatalf("128B @ 12.5GiB/s = %v, want ~9.5ns", d)
	}
	if DurationForBytes(0, 1e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if DurationForBytes(1, 1e15) == 0 {
		t.Fatal("non-zero transfer must take non-zero time")
	}
}
