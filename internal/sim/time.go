// Package sim provides the discrete-event simulation kernel that underpins
// every timing model in this repository: the interconnect datapath, the
// memory hierarchy, and the simulated application workloads.
//
// The kernel is deliberately small: a virtual clock, an event queue, and
// cooperative processes with SimPy-like blocking primitives (Sleep, Signal,
// Resource, Pipe). Determinism is a hard requirement — given the same seed
// and the same sequence of API calls, a simulation produces bit-identical
// results. To that end only one process goroutine ever runs at a time, and
// ties between events scheduled for the same instant are broken by insertion
// order.
package sim

import "fmt"

// Time is a point (or span) of virtual time measured in integer picoseconds.
// int64 picoseconds cover about 106 days of simulated time, far beyond any
// experiment in this repository.
type Time int64

// Convenient duration units, all expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit, e.g. "950ns" or "1.25ms".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%s%dps", neg, int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%s%.3gns", neg, t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%s%.4gus", neg, t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%s%.4gms", neg, float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.4gs", neg, t.Seconds())
	}
}

// DurationForBytes returns the time needed to move n bytes at rate bytes/sec.
// It rounds up so that a non-zero transfer never takes zero time.
func DurationForBytes(n int64, bytesPerSec float64) Time {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	ps := float64(n) / bytesPerSec * float64(Second)
	t := Time(ps)
	if t == 0 {
		t = 1
	}
	return t
}
