package sim

import "fmt"

// Proc is a cooperative simulated process. A Proc runs on its own goroutine,
// but the kernel guarantees that at most one process goroutine executes at a
// time: the kernel resumes a process and then blocks until the process either
// yields (by calling a blocking primitive such as Sleep or Wait) or returns.
// This keeps simulations deterministic without locks in model code.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Go spawns a new simulated process executing fn. The process starts at the
// current virtual time (after already-queued events for this instant).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		k.procs--
		p.yield <- struct{}{}
	}()
	k.Schedule(0, func() { p.step() })
	return p
}

// step hands control to the process goroutine and waits for it to block or
// finish. It must only be called from kernel (event) context.
func (p *Proc) step() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park yields control back to the kernel; the process stays blocked until
// another event calls step again.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sleep blocks the process for d virtual time. Non-positive durations yield
// the processor for one scheduling round without advancing the clock.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.Schedule(d, func() { p.step() })
	p.park()
}

// Signal is a broadcast-style condition variable for processes. Waiters
// block until another party calls Broadcast (wake all) or Wake (wake one).
// The zero value is unusable; construct with NewSignal.
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a Signal bound to kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait blocks the calling process until the signal is fired.
func (s *Signal) Wait(p *Proc) {
	if p.k != s.k {
		panic("sim: Signal.Wait with process from a different kernel")
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Waiters reports the number of processes currently blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Broadcast wakes every waiting process. Wakeups are delivered as events at
// the current instant, in FIFO order.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.k.Schedule(0, func() { w.step() })
	}
}

// Wake wakes the longest-waiting process, if any, and reports whether a
// process was woken.
func (s *Signal) Wake() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.k.Schedule(0, func() { w.step() })
	return true
}

// WaitGroup counts down to zero and wakes waiters, mirroring sync.WaitGroup
// for simulated processes.
type WaitGroup struct {
	sig   *Signal
	count int
}

// NewWaitGroup returns a WaitGroup bound to kernel k.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{sig: NewSignal(k)} }

// Add increments the counter by n (n may be negative, like sync.WaitGroup).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.sig.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.sig.Wait(p)
	}
}

func (wg *WaitGroup) String() string { return fmt.Sprintf("WaitGroup(%d)", wg.count) }
