// Package shard is the conservative parallel-discrete-event runtime: it
// partitions a simulation across N sim.Kernels ("shards") and advances them
// in lock-step time windows bounded by the fabric lookahead.
//
// The scheme is classical conservative PDES (Chandy/Misra/Bryant windows,
// the same property DRackSim exploits for rack-scale disaggregation): the
// ThymesisFlow wire has a fixed minimum one-way crossing (phy.SerdesCrossing,
// 50 ns — the serdes hop of the 950 ns round trip), so no event executed on
// one shard at virtual time t can affect a peer shard before t+lookahead.
// Each window therefore runs every shard independently — and in parallel —
// over [t, t+lookahead), then exchanges the cross-shard messages staged on
// Conduits at a barrier before the next window opens.
//
// Determinism: shards only touch their own state inside a window, the
// barrier flush is single-threaded, and staged messages are injected in a
// canonical order — sorted by (destination shard, delivery time, transmit
// time, conduit creation order, per-conduit sequence) — so a seeded run is
// byte-identical regardless of GOMAXPROCS or how the OS schedules the
// worker goroutines. Injected events carry their remote transmit time into
// the destination kernel's (at, schedAt, seq) event order, reconstructing
// the interleaving a single shared kernel would have produced (deliveries
// are scheduled at transmit time in a sequential run). See
// docs/PARALLEL_SIM.md for the invariants and the residual tie-break rule.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"thymesisflow/internal/sim"
)

// Shard is one partition of the simulation: a private kernel plus its
// position in the group.
type Shard struct {
	id int
	k  *sim.Kernel
	g  *Group
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Kernel returns the shard's private kernel. All components placed on this
// shard must be built on it.
func (s *Shard) Kernel() *sim.Kernel { return s.k }

// msg is one staged cross-shard event.
type msg struct {
	at   sim.Time // delivery time on the destination kernel
	txAt sim.Time // source kernel's clock when Send was called
	seq  uint64   // per-conduit FIFO sequence
	fn   func()
}

// Conduit is a unidirectional timestamped channel between two shards. The
// source shard stages messages on it during a window (Send); the group
// coordinator drains every conduit at the barrier. A Conduit is owned by
// its source shard: Send must only be called from events executing on the
// source kernel (or between windows).
type Conduit struct {
	id       int
	src, dst *Shard
	minDelay sim.Time
	seq      uint64
	buf      []msg
}

// Send stages fn for delivery at absolute time `at` on the destination
// shard. It panics if the delivery violates the conduit's lookahead — that
// would mean a message could land inside the window currently executing on
// the destination, which the conservative scheme cannot order correctly.
// Send implements phy.Injector.
func (c *Conduit) Send(at sim.Time, fn func()) {
	txAt := c.src.k.Now()
	if at < txAt+c.minDelay {
		panic(fmt.Sprintf("shard: conduit %d delivery at %v violates lookahead (sent %v, min delay %v)",
			c.id, at, txAt, c.minDelay))
	}
	c.buf = append(c.buf, msg{at: at, txAt: txAt, seq: c.seq, fn: fn})
	c.seq++
}

// Group advances a set of shards in conservative windows.
type Group struct {
	shards    []*Shard
	conduits  []*Conduit
	lookahead sim.Time

	// Worker pool, alive for the duration of one RunUntil call: windows
	// are ~lookahead long (50 ns of virtual time), so a full run crosses
	// tens of thousands of barriers; spawning goroutines per window would
	// dominate. The coordinator publishes the window horizon, feeds
	// active shards through `work`, and counts completions on `done`.
	workers int
	horizon sim.Time
	work    chan *Shard
	done    chan struct{}

	// Runtime health counters, updated once per window by the coordinator
	// (single-threaded) under statMu so Health() may be called concurrently
	// by a metrics scraper. Everything is derived from virtual time and
	// event counts, so a seeded run reports identical health regardless of
	// GOMAXPROCS or OS scheduling.
	statMu       sync.Mutex
	windows      uint64
	flushed      uint64
	maxFlush     int
	shardWindows []uint64   // windows in which shard i executed
	shardStall   []sim.Time // virtual time shard i sat idle at barriers
}

// NewGroup builds a group of n shards advanced with the given lookahead
// (the minimum cross-shard delivery delay; every Conduit must respect it).
func NewGroup(n int, lookahead sim.Time) *Group {
	if n < 1 {
		panic("shard: group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("shard: lookahead must be positive")
	}
	g := &Group{lookahead: lookahead}
	for i := 0; i < n; i++ {
		g.shards = append(g.shards, &Shard{id: i, k: sim.NewKernel(), g: g})
	}
	g.workers = n
	if p := runtime.GOMAXPROCS(0); g.workers > p {
		g.workers = p
	}
	g.shardWindows = make([]uint64, n)
	g.shardStall = make([]sim.Time, n)
	return g
}

// Len reports the number of shards.
func (g *Group) Len() int { return len(g.shards) }

// Shard returns shard i.
func (g *Group) Shard(i int) *Shard { return g.shards[i] }

// Lookahead returns the group's window bound.
func (g *Group) Lookahead() sim.Time { return g.lookahead }

// Connect creates a conduit from src to dst with the given minimum delivery
// delay. The delay must be at least the group lookahead, or a message could
// arrive inside the destination's current window. Conduits must be created
// while the group is quiescent (construction or between runs); their
// creation order is part of the deterministic merge order.
func (g *Group) Connect(src, dst *Shard, minDelay sim.Time) *Conduit {
	if src.g != g || dst.g != g {
		panic("shard: Connect across groups")
	}
	if minDelay < g.lookahead {
		panic(fmt.Sprintf("shard: conduit delay %v below group lookahead %v", minDelay, g.lookahead))
	}
	c := &Conduit{id: len(g.conduits), src: src, dst: dst, minDelay: minDelay}
	g.conduits = append(g.conduits, c)
	return c
}

func (g *Group) worker() {
	for s := range g.work {
		s.k.RunBefore(g.horizon)
		g.done <- struct{}{}
	}
}

// flush drains every conduit into the destination kernels in canonical
// order. Single-threaded; runs only between windows.
func (g *Group) flush(scratch []msgRef) []msgRef {
	scratch = scratch[:0]
	for _, c := range g.conduits {
		for i := range c.buf {
			scratch = append(scratch, msgRef{c: c, m: &c.buf[i]})
		}
	}
	if len(scratch) == 0 {
		return scratch
	}
	sortMsgRefs(scratch)
	for _, r := range scratch {
		r.c.dst.k.InjectAt(r.m.at, r.m.txAt, r.m.fn)
	}
	for _, c := range g.conduits {
		for i := range c.buf {
			c.buf[i].fn = nil
		}
		c.buf = c.buf[:0]
	}
	return scratch
}

type msgRef struct {
	c *Conduit
	m *msg
}

// sortMsgRefs orders staged messages by (dst shard, at, txAt, conduit id,
// per-conduit seq) — a total, deterministic order. Insertion sort: barrier
// batches are small (a handful of frames per window).
func sortMsgRefs(refs []msgRef) {
	for i := 1; i < len(refs); i++ {
		r := refs[i]
		j := i - 1
		for j >= 0 && msgRefAfter(refs[j], r) {
			refs[j+1] = refs[j]
			j--
		}
		refs[j+1] = r
	}
}

func msgRefAfter(a, b msgRef) bool {
	if a.c.dst.id != b.c.dst.id {
		return a.c.dst.id > b.c.dst.id
	}
	if a.m.at != b.m.at {
		return a.m.at > b.m.at
	}
	if a.m.txAt != b.m.txAt {
		return a.m.txAt > b.m.txAt
	}
	if a.c.id != b.c.id {
		return a.c.id > b.c.id
	}
	return a.m.seq > b.m.seq
}

// Run advances the group until every shard's queue drains and no staged
// messages remain. It returns the latest kernel clock across shards.
func (g *Group) Run() sim.Time {
	return g.RunUntil(sim.Time(1<<62 - 1))
}

// RunUntil advances the group through conservative windows, executing
// events with timestamps <= limit. If work remains beyond the limit, every
// shard's clock is parked at limit (mirroring Kernel.RunUntil) so that
// processes started afterwards resume from a common instant. It returns the
// latest kernel clock across shards.
func (g *Group) RunUntil(limit sim.Time) sim.Time {
	if g.workers > 1 {
		g.work = make(chan *Shard, len(g.shards))
		g.done = make(chan struct{}, len(g.shards))
		for i := 0; i < g.workers; i++ {
			go g.worker()
		}
		defer func() {
			close(g.work)
			g.work = nil
		}()
	}
	var scratch []msgRef
	active := make([]*Shard, 0, len(g.shards))
	isActive := make([]bool, len(g.shards))
	for {
		scratch = g.flush(scratch)
		nflushed := len(scratch)
		t, ok := g.nextAt()
		if !ok || t > limit {
			break
		}
		horizon := t + g.lookahead
		if horizon > limit {
			horizon = limit + 1 // include events at the limit itself
		}
		active = active[:0]
		for i := range isActive {
			isActive[i] = false
		}
		for _, s := range g.shards {
			if at, ok := s.k.NextAt(); ok && at < horizon {
				active = append(active, s)
				isActive[s.id] = true
			}
		}
		g.statMu.Lock()
		g.windows++
		g.flushed += uint64(nflushed)
		if nflushed > g.maxFlush {
			g.maxFlush = nflushed
		}
		for i := range g.shards {
			if isActive[i] {
				g.shardWindows[i]++
			} else {
				// The shard has nothing to run before the horizon: it waits
				// out the window at the barrier. Measured in virtual time so
				// the figure is deterministic per seed and shard count.
				g.shardStall[i] += horizon - t
			}
		}
		g.statMu.Unlock()
		if g.work == nil || len(active) == 1 {
			for _, s := range active {
				s.k.RunBefore(horizon)
			}
			continue
		}
		g.horizon = horizon
		for _, s := range active {
			g.work <- s
		}
		for range active {
			<-g.done
		}
	}
	var end sim.Time
	pending := false
	for _, s := range g.shards {
		if _, ok := s.k.NextAt(); ok {
			pending = true
		}
		if now := s.k.Now(); now > end {
			end = now
		}
	}
	if pending && limit > end {
		// Events remain beyond the limit: park at the limit, as a single
		// kernel's RunUntil would.
		end = limit
	}
	// Align every clock to the common end. A single kernel's clock rests at
	// the globally-last executed event; without this, a drained run leaves
	// shard clocks skewed and work scheduled between runs on a lagging shard
	// could address a peer's past.
	for _, s := range g.shards {
		s.k.AdvanceTo(end)
	}
	return end
}

// ShardStat is one shard's slice of the group's runtime health counters.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Windows counts the conservative windows in which the shard had work.
	Windows uint64 `json:"windows"`
	// Events counts the events executed on the shard's kernel.
	Events uint64 `json:"events"`
	// StallPS is the virtual time (picoseconds) the shard sat idle at
	// barriers — windows where peers ran but this shard had nothing due.
	StallPS int64 `json:"stall_ps"`
}

// Health is the group's runtime health snapshot: window/flush counters plus
// the per-shard work split. All figures derive from virtual time and event
// counts, so a seeded run reports byte-identical health at a given shard
// count regardless of GOMAXPROCS or OS scheduling.
type Health struct {
	// Shards holds the per-shard counters, indexed by shard ID.
	Shards []ShardStat `json:"shards"`
	// Windows is the total number of conservative windows executed.
	Windows uint64 `json:"windows"`
	// EventsPerWindow is the mean events executed per window across the
	// whole group.
	EventsPerWindow float64 `json:"events_per_window"`
	// Flushed counts cross-shard messages delivered at barriers; MaxFlushDepth
	// is the largest single-barrier batch (conduit backlog high-water mark).
	Flushed       uint64 `json:"flushed"`
	MaxFlushDepth int    `json:"max_flush_depth"`
	// Imbalance is max/mean of per-shard executed events: 1.0 is a perfect
	// split, N means one shard did N times the average (0 before any work).
	Imbalance float64 `json:"imbalance"`
}

// Health assembles the group's runtime health snapshot. Safe to call
// concurrently with RunUntil only from between-window quiescence or other
// goroutines reading stale-but-consistent counters; kernels' executed counts
// are read without synchronization and may lag mid-window.
func (g *Group) Health() Health {
	g.statMu.Lock()
	h := Health{
		Shards:        make([]ShardStat, len(g.shards)),
		Windows:       g.windows,
		Flushed:       g.flushed,
		MaxFlushDepth: g.maxFlush,
	}
	for i, s := range g.shards {
		h.Shards[i] = ShardStat{
			Shard:   i,
			Windows: g.shardWindows[i],
			Events:  s.k.Executed(),
			StallPS: int64(g.shardStall[i]),
		}
	}
	g.statMu.Unlock()

	var total, max uint64
	for _, st := range h.Shards {
		total += st.Events
		if st.Events > max {
			max = st.Events
		}
	}
	if h.Windows > 0 {
		h.EventsPerWindow = float64(total) / float64(h.Windows)
	}
	if total > 0 {
		mean := float64(total) / float64(len(h.Shards))
		h.Imbalance = float64(max) / mean
	}
	return h
}

// nextAt returns the earliest live event time across shards. Conduits are
// assumed flushed (the coordinator always flushes first).
func (g *Group) nextAt() (sim.Time, bool) {
	var min sim.Time
	found := false
	for _, s := range g.shards {
		if at, ok := s.k.NextAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}
