package shard

import (
	"fmt"
	"reflect"
	"testing"

	"thymesisflow/internal/sim"
)

const hop = 50 * sim.Nanosecond

// pingPongSequential runs the reference version of the cross-shard ping-pong
// on one shared kernel: two actors exchange `rounds` messages with a fixed
// hop delay, each logging (time, actor, payload) at delivery.
func pingPongSequential(rounds int) []string {
	k := sim.NewKernel()
	var log []string
	var send func(to int, round int)
	recv := func(actor, round int) {
		log = append(log, fmt.Sprintf("%v actor%d round%d", k.Now(), actor, round))
		if round < rounds {
			send(1-actor, round+1)
		}
	}
	send = func(to, round int) {
		k.ScheduleAt(k.Now()+hop, func() { recv(to, round) })
	}
	k.Schedule(0, func() { send(1, 1) })
	k.Run()
	return log
}

// pingPongSharded runs the same exchange with each actor on its own shard,
// messages crossing on conduits.
func pingPongSharded(rounds int) []string {
	g := NewGroup(2, hop)
	a, b := g.Shard(0), g.Shard(1)
	ab := g.Connect(a, b, hop)
	ba := g.Connect(b, a, hop)
	ks := []*sim.Kernel{a.Kernel(), b.Kernel()}
	outbound := []*Conduit{ab, ba}
	var log []string
	var send func(to, round int)
	recv := func(actor, round int) {
		log = append(log, fmt.Sprintf("%v actor%d round%d", ks[actor].Now(), actor, round))
		if round < rounds {
			send(1-actor, round+1)
		}
	}
	send = func(to, round int) {
		from := 1 - to
		outbound[from].Send(ks[from].Now()+hop, func() { recv(to, round) })
	}
	ks[0].Schedule(0, func() { send(1, 1) })
	g.Run()
	return log
}

func TestCrossShardMatchesSequential(t *testing.T) {
	want := pingPongSequential(64)
	got := pingPongSharded(64)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded log diverges\n got: %v\nwant: %v", got, want)
	}
}

// TestInjectedOrdering checks the core interleaving property: a delivery
// injected with its remote transmit time sorts among same-instant local
// events exactly where a shared kernel would have placed it.
func TestInjectedOrdering(t *testing.T) {
	seq := func() []string {
		k := sim.NewKernel()
		var log []string
		// Remote transmit at t=0 for delivery at t=100ns...
		k.ScheduleAt(100*sim.Nanosecond, func() { log = append(log, "remote") })
		// ...and a local event at 60ns that schedules for the same instant.
		k.ScheduleAt(60*sim.Nanosecond, func() {
			k.ScheduleAt(100*sim.Nanosecond, func() { log = append(log, "local") })
		})
		k.Run()
		return log
	}()
	shd := func() []string {
		g := NewGroup(2, hop)
		c := g.Connect(g.Shard(1), g.Shard(0), hop)
		k := g.Shard(0).Kernel()
		var log []string
		// Same remote transmit, staged from shard 1 at its t=0.
		g.Shard(1).Kernel().Schedule(0, func() {
			c.Send(100*sim.Nanosecond, func() { log = append(log, "remote") })
		})
		k.ScheduleAt(60*sim.Nanosecond, func() {
			k.ScheduleAt(100*sim.Nanosecond, func() { log = append(log, "local") })
		})
		g.Run()
		return log
	}()
	if !reflect.DeepEqual(seq, shd) {
		t.Fatalf("interleaving diverges: sequential %v, sharded %v", seq, shd)
	}
	if want := []string{"remote", "local"}; !reflect.DeepEqual(seq, want) {
		t.Fatalf("sequential reference order = %v, want %v", seq, want)
	}
}

func TestConduitLookaheadViolationPanics(t *testing.T) {
	g := NewGroup(2, hop)
	c := g.Connect(g.Shard(0), g.Shard(1), hop)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below the lookahead did not panic")
		}
	}()
	c.Send(hop/2, func() {})
}

func TestConnectBelowLookaheadPanics(t *testing.T) {
	g := NewGroup(2, hop)
	defer func() {
		if recover() == nil {
			t.Fatal("Connect below the group lookahead did not panic")
		}
	}()
	g.Connect(g.Shard(0), g.Shard(1), hop-1)
}

func TestRunUntilParksClocks(t *testing.T) {
	g := NewGroup(2, hop)
	fired := false
	g.Shard(0).Kernel().ScheduleAt(10*sim.Microsecond, func() { fired = true })
	end := g.RunUntil(sim.Microsecond)
	if fired {
		t.Fatal("event beyond the limit fired")
	}
	if end != sim.Microsecond {
		t.Fatalf("end = %v, want %v", end, sim.Microsecond)
	}
	for i := 0; i < g.Len(); i++ {
		if now := g.Shard(i).Kernel().Now(); now != sim.Microsecond {
			t.Fatalf("shard %d clock = %v, want parked at %v", i, now, sim.Microsecond)
		}
	}
	g.RunUntil(20 * sim.Microsecond)
	if !fired {
		t.Fatal("event not fired after second RunUntil")
	}
}

// TestScheduledConservation: one cross-shard delivery costs one scheduled
// event on the destination, so the group-wide total matches the sequential
// run's count.
func TestScheduledConservation(t *testing.T) {
	const rounds = 32
	g := NewGroup(2, hop)
	a, b := g.Shard(0), g.Shard(1)
	ab, ba := g.Connect(a, b, hop), g.Connect(b, a, hop)
	ks := []*sim.Kernel{a.Kernel(), b.Kernel()}
	outbound := []*Conduit{ab, ba}
	var send func(to, round int)
	recv := func(actor, round int) {
		if round < rounds {
			send(1-actor, round+1)
		}
	}
	send = func(to, round int) {
		from := 1 - to
		outbound[from].Send(ks[from].Now()+hop, func() { recv(to, round) })
	}
	ks[0].Schedule(0, func() { send(1, 1) })
	g.Run()
	total := ks[0].Scheduled() + ks[1].Scheduled()
	if want := uint64(rounds + 1); total != want {
		t.Fatalf("scheduled %d events across shards, want %d", total, want)
	}
}

// TestHealthCounters drives the ping-pong and checks the runtime health
// snapshot: windows/events accounting, barrier stall attribution, and flush
// depth all add up.
func TestHealthCounters(t *testing.T) {
	const rounds = 64
	g := NewGroup(2, hop)
	a, b := g.Shard(0), g.Shard(1)
	ab, ba := g.Connect(a, b, hop), g.Connect(b, a, hop)
	ks := []*sim.Kernel{a.Kernel(), b.Kernel()}
	outbound := []*Conduit{ab, ba}
	var send func(to, round int)
	recv := func(actor, round int) {
		if round < rounds {
			send(1-actor, round+1)
		}
	}
	send = func(to, round int) {
		from := 1 - to
		outbound[from].Send(ks[from].Now()+hop, func() { recv(to, round) })
	}
	ks[0].Schedule(0, func() { send(1, 1) })
	g.Run()

	h := g.Health()
	if h.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	var events uint64
	for i, st := range h.Shards {
		if st.Shard != i {
			t.Fatalf("shard index %d at position %d", st.Shard, i)
		}
		events += st.Events
	}
	// The ping-pong fires one kickoff plus one delivery per round, and each
	// shard executed its own half.
	if want := uint64(rounds + 1); events != want {
		t.Fatalf("events across shards = %d, want %d", events, want)
	}
	if h.Flushed != rounds {
		t.Fatalf("flushed = %d, want %d cross-shard messages", h.Flushed, rounds)
	}
	if h.MaxFlushDepth < 1 {
		t.Fatalf("max flush depth = %d, want >= 1", h.MaxFlushDepth)
	}
	// The exchange is strictly alternating: while one shard runs a window the
	// other waits, so both accumulate barrier stall.
	for _, st := range h.Shards {
		if st.StallPS <= 0 {
			t.Fatalf("shard %d recorded no barrier stall: %+v", st.Shard, h.Shards)
		}
	}
	if h.EventsPerWindow <= 0 {
		t.Fatalf("events per window = %v", h.EventsPerWindow)
	}
	// A symmetric ping-pong splits work evenly (the kickoff event gives shard
	// 0 at most one extra event).
	if h.Imbalance < 1 || h.Imbalance > 1.1 {
		t.Fatalf("imbalance = %v, want ~1.0", h.Imbalance)
	}
}

// TestHealthDeterministic runs the same seeded workload twice and requires
// byte-identical health snapshots: the counters must derive from virtual
// time only, never host scheduling.
func TestHealthDeterministic(t *testing.T) {
	run := func() Health {
		g := NewGroup(2, hop)
		a, b := g.Shard(0), g.Shard(1)
		ab, ba := g.Connect(a, b, hop), g.Connect(b, a, hop)
		ks := []*sim.Kernel{a.Kernel(), b.Kernel()}
		outbound := []*Conduit{ab, ba}
		var send func(to, round int)
		recv := func(actor, round int) {
			if round < 128 {
				send(1-actor, round+1)
			}
		}
		send = func(to, round int) {
			from := 1 - to
			outbound[from].Send(ks[from].Now()+hop, func() { recv(to, round) })
		}
		ks[0].Schedule(0, func() { send(1, 1) })
		g.Run()
		return g.Health()
	}
	h1, h2 := run(), run()
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("health diverges across identical runs:\n1: %+v\n2: %+v", h1, h2)
	}
}

// BenchmarkGroupWindows measures window stepping with dense cross-shard
// traffic: 4 shards, each running a self-rescheduling local chain while
// exchanging messages with its neighbour every window.
func BenchmarkGroupWindows(b *testing.B) {
	const events = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGroup(4, hop)
		conduits := make([]*Conduit, g.Len())
		for s := 0; s < g.Len(); s++ {
			conduits[s] = g.Connect(g.Shard(s), g.Shard((s+1)%g.Len()), hop)
		}
		// Per-shard counters: shards execute concurrently inside a window.
		fired := make([]int, g.Len())
		perShard := events / g.Len()
		for s := 0; s < g.Len(); s++ {
			s := s
			k := g.Shard(s).Kernel()
			var step func()
			step = func() {
				fired[s]++
				if fired[s] >= perShard {
					return
				}
				if fired[s]%8 == 0 {
					// Hand the chain to the neighbour; it continues there
					// against that shard's counter.
					conduits[s].Send(k.Now()+hop, func() {
						g.Shard((s+1)%g.Len()).Kernel().Schedule(0, func() {})
					})
					k.Schedule(sim.Time(fired[s]%7)*sim.Nanosecond, step)
				} else {
					k.Schedule(sim.Time(fired[s]%7)*sim.Nanosecond, step)
				}
			}
			k.Schedule(0, step)
		}
		g.Run()
		total := 0
		for _, f := range fired {
			total += f
		}
		if total < events/2 {
			b.Fatalf("fired %d events, want >= %d", total, events/2)
		}
	}
}

// BenchmarkGroupBarrierOverhead isolates the per-window barrier cost: each
// window holds exactly one event per shard, so the run is barrier-dominated.
func BenchmarkGroupBarrierOverhead(b *testing.B) {
	const windows = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGroup(4, hop)
		for s := 0; s < g.Len(); s++ {
			k := g.Shard(s).Kernel()
			var step func()
			n := 0
			step = func() {
				n++
				if n < windows {
					k.Schedule(hop, step)
				}
			}
			k.Schedule(0, step)
		}
		g.Run()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/windows, "ns/window")
	}
}
