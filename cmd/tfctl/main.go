// Command tfctl is the CLI client of the ThymesisFlow control plane.
//
// Usage:
//
//	tfctl [-server URL] [-token TOKEN] <command> [flags]
//
// Commands:
//
//	attach  -compute HOST -donor HOST -bytes N [-channels N]
//	detach  -id ATTACHMENT
//	list
//	get     -id ATTACHMENT
//	sagas
//	topology
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

func main() {
	server := flag.String("server", "http://localhost:8440", "control-plane base URL")
	token := flag.String("token", "tf-admin", "bearer token")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	rest := flag.Args()[1:]

	var err error
	switch cmd {
	case "attach":
		err = cmdAttach(*server, *token, rest)
	case "detach":
		err = cmdDetach(*server, *token, rest)
	case "list":
		err = doGET(*server+"/v1/attachments", *token)
	case "get":
		fs := flag.NewFlagSet("get", flag.ExitOnError)
		id := fs.String("id", "", "attachment id")
		fs.Parse(rest) //nolint:errcheck
		if *id == "" {
			usage()
		}
		err = doGET(*server+"/v1/attachments/"+*id, *token)
	case "sagas":
		err = doGET(*server+"/v1/sagas", *token)
	case "topology":
		err = doGET(*server+"/v1/topology", *token)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tfctl [-server URL] [-token TOKEN] attach|detach|list|get|sagas|topology [flags]")
	os.Exit(2)
}

func cmdAttach(server, token string, args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	compute := fs.String("compute", "", "compute (recipient) host")
	donor := fs.String("donor", "", "memory donor host")
	bytesN := fs.Int64("bytes", 0, "bytes of disaggregated memory")
	channels := fs.Int("channels", 1, "network channels (2 = bonding)")
	fs.Parse(args) //nolint:errcheck
	if *compute == "" || *donor == "" || *bytesN <= 0 {
		usage()
	}
	body, _ := json.Marshal(map[string]any{
		"compute_host": *compute,
		"donor_host":   *donor,
		"bytes":        *bytesN,
		"channels":     *channels,
	})
	req, err := http.NewRequest(http.MethodPost, server+"/v1/attachments", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return do(req, token)
}

func cmdDetach(server, token string, args []string) error {
	fs := flag.NewFlagSet("detach", flag.ExitOnError)
	id := fs.String("id", "", "attachment id")
	fs.Parse(args) //nolint:errcheck
	if *id == "" {
		usage()
	}
	req, err := http.NewRequest(http.MethodDelete, server+"/v1/attachments/"+*id, nil)
	if err != nil {
		return err
	}
	return do(req, token)
}

func doGET(url, token string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return do(req, token)
}

func do(req *http.Request, token string) error {
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// Pretty-print JSON responses.
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
