// Command tfctl is the CLI client of the ThymesisFlow control plane.
//
// Usage:
//
//	tfctl [-server URL] [-token TOKEN] <command> [flags]
//
// Commands:
//
//	attach  -compute HOST -donor HOST -bytes N [-channels N]
//	detach  -id ATTACHMENT
//	list
//	get     -id ATTACHMENT
//	sagas
//	topology
//	raft    [-json]
//
// raft prints the queried node's Raft view — its role and term plus every
// member's role, term, and commit/applied/last log indices — as a
// deterministic table (members in ID order), or as the raw
// /v1/raft/status JSON with -json. On a single-node (non-HA) control
// plane the server answers 404.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
)

func main() {
	server := flag.String("server", "http://localhost:8440", "control-plane base URL")
	token := flag.String("token", "tf-admin", "bearer token")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	rest := flag.Args()[1:]

	var err error
	switch cmd {
	case "attach":
		err = cmdAttach(*server, *token, rest)
	case "detach":
		err = cmdDetach(*server, *token, rest)
	case "list":
		err = doGET(*server+"/v1/attachments", *token)
	case "get":
		fs := flag.NewFlagSet("get", flag.ExitOnError)
		id := fs.String("id", "", "attachment id")
		fs.Parse(rest) //nolint:errcheck
		if *id == "" {
			usage()
		}
		err = doGET(*server+"/v1/attachments/"+*id, *token)
	case "sagas":
		err = doGET(*server+"/v1/sagas", *token)
	case "topology":
		err = doGET(*server+"/v1/topology", *token)
	case "raft":
		err = cmdRaft(*server, *token, rest)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tfctl [-server URL] [-token TOKEN] attach|detach|list|get|sagas|topology|raft [flags]")
	os.Exit(2)
}

func cmdAttach(server, token string, args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	compute := fs.String("compute", "", "compute (recipient) host")
	donor := fs.String("donor", "", "memory donor host")
	bytesN := fs.Int64("bytes", 0, "bytes of disaggregated memory")
	channels := fs.Int("channels", 1, "network channels (2 = bonding)")
	fs.Parse(args) //nolint:errcheck
	if *compute == "" || *donor == "" || *bytesN <= 0 {
		usage()
	}
	body, _ := json.Marshal(map[string]any{
		"compute_host": *compute,
		"donor_host":   *donor,
		"bytes":        *bytesN,
		"channels":     *channels,
	})
	req, err := http.NewRequest(http.MethodPost, server+"/v1/attachments", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return do(req, token)
}

func cmdDetach(server, token string, args []string) error {
	fs := flag.NewFlagSet("detach", flag.ExitOnError)
	id := fs.String("id", "", "attachment id")
	fs.Parse(args) //nolint:errcheck
	if *id == "" {
		usage()
	}
	req, err := http.NewRequest(http.MethodDelete, server+"/v1/attachments/"+*id, nil)
	if err != nil {
		return err
	}
	return do(req, token)
}

// raftStatus mirrors the /v1/raft/status response shape
// (controlplane.RaftStatus); tfctl decodes over HTTP like any external
// client rather than importing the server package.
type raftStatus struct {
	ID               string `json:"id"`
	Role             string `json:"role"`
	Term             uint64 `json:"term"`
	Leader           string `json:"leader"`
	CommitIndex      uint64 `json:"commit_index"`
	AppliedIndex     uint64 `json:"applied_index"`
	LastIndex        uint64 `json:"last_index"`
	QuorumReachable  bool   `json:"quorum_reachable"`
	LeaderChanges    uint64 `json:"leader_changes"`
	NotLeaderRejects int64  `json:"not_leader_rejects"`
	Members          []struct {
		ID        string `json:"id"`
		Role      string `json:"role"`
		Term      uint64 `json:"term"`
		Commit    uint64 `json:"commit"`
		Applied   uint64 `json:"applied"`
		LastIndex uint64 `json:"last_index"`
		Leader    string `json:"leader"`
		Stopped   bool   `json:"stopped"`
	} `json:"members"`
}

func cmdRaft(server, token string, args []string) error {
	fs := flag.NewFlagSet("raft", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw /v1/raft/status JSON")
	fs.Parse(args) //nolint:errcheck
	if *asJSON {
		return doGET(server+"/v1/raft/status", token)
	}
	req, err := http.NewRequest(http.MethodGet, server+"/v1/raft/status", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("control plane is not running a replica set (%s)", resp.Status)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var st raftStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decode /v1/raft/status: %w", err)
	}
	quorum := "reachable"
	if !st.QuorumReachable {
		quorum = "lost"
	}
	leader := st.Leader
	if leader == "" {
		leader = "(none)"
	}
	fmt.Printf("node %s: role %s, term %d, leader %s, quorum %s\n", st.ID, st.Role, st.Term, leader, quorum)
	fmt.Printf("log: commit %d, applied %d, last %d; %d leader changes, %d not-leader rejects\n",
		st.CommitIndex, st.AppliedIndex, st.LastIndex, st.LeaderChanges, st.NotLeaderRejects)
	members := st.Members
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	fmt.Printf("%-10s %-10s %6s %8s %8s %6s %s\n", "MEMBER", "ROLE", "TERM", "COMMIT", "APPLIED", "LAST", "STATE")
	for _, m := range members {
		state := "running"
		if m.Stopped {
			state = "stopped"
		}
		fmt.Printf("%-10s %-10s %6d %8d %8d %6d %s\n", m.ID, m.Role, m.Term, m.Commit, m.Applied, m.LastIndex, state)
	}
	return nil
}

func doGET(url, token string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return do(req, token)
}

func do(req *http.Request, token string) error {
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// Pretty-print JSON responses.
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
