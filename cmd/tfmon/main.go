// Command tfmon is the flight-recorder analysis tool: it reads a frozen
// time-series snapshot — the binary TFTS export of GET
// /v1/timeseries?format=binary, or the JSON form of the same endpoint —
// renders a unicode sparkline per series, replays the snapshot through the
// online anomaly detector, and draws the detected anomalies on a shared
// timeline.
//
//	tfmon flight.tfts                   # sparklines + anomaly timeline
//	tfmon -rules cp flight.json         # control-plane rules only
//	tfmon -prefix llc. flight.tfts      # restrict to one series family
//	tfmon -json flight.tfts             # machine-readable output
//
// Counter series sparkline their per-tick deltas (the cumulative total is a
// monotone ramp that hides every feature); gauge series sparkline raw
// values. Output is deterministic for a given snapshot and flag set, so
// tfmon runs byte-identically over the seeded chaos exports.
//
// Exits non-zero when the snapshot holds no series: an empty export is
// almost always a collection mistake (recorder off, wrong file, truncated
// download), not a quiet fabric.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
)

func main() {
	rules := flag.String("rules", "all", "anomaly rule catalogue to replay: datapath|cp|all")
	prefix := flag.String("prefix", "", "restrict analysis to series whose name starts with this prefix")
	width := flag.Int("width", 48, "sparkline and timeline width in cells")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of sparklines")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tfmon [-rules datapath|cp|all] [-prefix P] [-width N] [-json] <snapshot>")
		os.Exit(2)
	}
	ruleSet, err := ruleCatalogue(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfmon: %v\n", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfmon: %v\n", err)
		os.Exit(1)
	}
	snap, err := timeseries.DecodeSnapshotAny(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfmon: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if *prefix != "" {
		snap = snap.Filter(func(name string) bool { return strings.HasPrefix(name, *prefix) })
	}
	if len(snap.Series) == 0 {
		fmt.Fprintf(os.Stderr, "tfmon: %s holds no series (recorder disabled, or a truncated export?)\n", flag.Arg(0))
		os.Exit(1)
	}

	events := detect.Analyze(snap, ruleSet)

	if *jsonOut {
		out := analysisJSON(snap, events)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tfmon: %v\n", err)
			os.Exit(1)
		}
		return
	}
	render(os.Stdout, snap, events, *width)
}

// ruleCatalogue maps the -rules flag to a detector rule set.
func ruleCatalogue(name string) ([]detect.Rule, error) {
	switch name {
	case "datapath":
		return detect.DatapathRules(), nil
	case "cp":
		return detect.ControlPlaneRules(), nil
	case "all":
		return append(detect.DatapathRules(), detect.ControlPlaneRules()...), nil
	}
	return nil, fmt.Errorf("unknown rule catalogue %q (want datapath, cp, or all)", name)
}

// seriesStat is the per-series JSON summary.
type seriesStat struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points int     `json:"points"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
}

func analysisJSON(snap timeseries.Snapshot, events []detect.Event) any {
	stats := make([]seriesStat, 0, len(snap.Series))
	for _, ss := range snap.Series {
		mn, mx, last := rawStats(ss.Points)
		stats = append(stats, seriesStat{
			Name: ss.Name, Kind: ss.Kind, Points: len(ss.Points),
			Min: mn, Max: mx, Last: last,
		})
	}
	totals := make(map[string]int)
	for _, e := range events {
		totals[e.Class]++
	}
	return struct {
		Series []seriesStat   `json:"series"`
		Events []detect.Event `json:"events"`
		Totals map[string]int `json:"totals"`
	}{stats, events, totals}
}

// render draws the human-readable report: one sparkline row per series,
// then every anomaly as a bar on a shared timeline spanning the snapshot.
func render(w *os.File, snap timeseries.Snapshot, events []detect.Event, width int) {
	if width < 8 {
		width = 8
	}
	minTS, maxTS := timeDomain(snap)
	fmt.Fprintf(w, "%d series, ticks %d..%d\n\n", len(snap.Series), minTS, maxTS)

	nameW := len("series")
	for _, ss := range snap.Series {
		if len(ss.Name) > nameW {
			nameW = len(ss.Name)
		}
	}
	fmt.Fprintf(w, "%-*s %-7s %6s %12s %12s %12s\n",
		nameW, "series", "kind", "points", "min", "max", "last")
	for _, ss := range snap.Series {
		mn, mx, last := rawStats(ss.Points)
		vals := rawValues(ss)
		fmt.Fprintf(w, "%-*s %-7s %6d %12.4g %12.4g %12.4g  %s\n",
			nameW, ss.Name, ss.Kind, len(ss.Points), mn, mx, last, sparkline(vals, width))
	}

	if len(events) == 0 {
		fmt.Fprintf(w, "\nno anomalies\n")
		return
	}
	fmt.Fprintf(w, "\n%d anomalies\n", len(events))
	classW := len("class")
	for _, e := range events {
		if len(e.Class) > classW {
			classW = len(e.Class)
		}
	}
	for _, e := range events {
		state := fmt.Sprintf("%d..%d", e.OnsetTS, e.ClearTS)
		if e.ClearTS == 0 {
			state = fmt.Sprintf("%d.. (open)", e.OnsetTS)
		}
		fmt.Fprintf(w, "  %-*s %s  peak %.4g, %d ticks, %s\n",
			classW, e.Class, eventBar(e, minTS, maxTS, width), e.Peak, e.Ticks, e.Series)
		fmt.Fprintf(w, "  %-*s %s\n", classW, "", state)
	}
}

// rawStats summarizes the raw point values (cumulative for counters).
func rawStats(points []timeseries.Point) (mn, mx, last float64) {
	if len(points) == 0 {
		return 0, 0, 0
	}
	mn, mx = points[0].V, points[0].V
	for _, p := range points {
		if p.V < mn {
			mn = p.V
		}
		if p.V > mx {
			mx = p.V
		}
	}
	return mn, mx, points[len(points)-1].V
}

// rawValues extracts the values a sparkline should show: raw levels for
// gauges, consecutive deltas for counters (clamped at zero across resets).
func rawValues(ss timeseries.SeriesSnapshot) []float64 {
	out := make([]float64, 0, len(ss.Points))
	if ss.Kind != timeseries.Counter.String() {
		for _, p := range ss.Points {
			out = append(out, p.V)
		}
		return out
	}
	for i := 1; i < len(ss.Points); i++ {
		d := ss.Points[i].V - ss.Points[i-1].V
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values into width cells, averaging each cell's bucket
// and scaling min..max across the eight block glyphs.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	cells := make([]float64, width)
	for i := 0; i < width; i++ {
		lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		cells[i] = sum / float64(hi-lo)
	}
	mn, mx := cells[0], cells[0]
	for _, v := range cells {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		level := 0
		if mx > mn {
			level = int((v - mn) / (mx - mn) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// eventBar draws one anomaly's extent on a timeline spanning [minTS, maxTS].
// Open anomalies (ClearTS == 0) extend to the end of the snapshot.
func eventBar(e detect.Event, minTS, maxTS int64, width int) string {
	span := maxTS - minTS
	if span <= 0 {
		span = 1
	}
	clear := e.ClearTS
	if clear == 0 {
		clear = maxTS
	}
	lo := int(int64(width) * (e.OnsetTS - minTS) / span)
	hi := int(int64(width) * (clear - minTS) / span)
	if lo < 0 {
		lo = 0
	}
	if hi >= width {
		hi = width - 1
	}
	if hi < lo {
		hi = lo
	}
	bar := make([]rune, width)
	for i := range bar {
		switch {
		case i >= lo && i <= hi:
			bar[i] = '█'
		default:
			bar[i] = '·'
		}
	}
	return "|" + string(bar) + "|"
}

// timeDomain returns the min and max timestamps across every series.
func timeDomain(snap timeseries.Snapshot) (minTS, maxTS int64) {
	first := true
	for _, ss := range snap.Series {
		for _, p := range ss.Points {
			if first || p.TS < minTS {
				minTS = p.TS
			}
			if first || p.TS > maxTS {
				maxTS = p.TS
			}
			first = false
		}
	}
	return minTS, maxTS
}
