package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
)

func TestSparklineShapes(t *testing.T) {
	ramp := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	if got := sparkline(ramp, 8); got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	flat := []float64{3, 3, 3, 3}
	if got := sparkline(flat, 8); got != "▁▁▁▁" {
		t.Fatalf("flat sparkline = %q (want floor level, width clamped to data)", got)
	}
	if got := sparkline(nil, 8); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	// Downsampling averages buckets: 16 values into 4 cells.
	wide := make([]float64, 16)
	for i := range wide {
		wide[i] = float64(i)
	}
	if got := sparkline(wide, 4); len([]rune(got)) != 4 {
		t.Fatalf("downsampled sparkline = %q", got)
	}
}

func TestRawValuesCounterDeltas(t *testing.T) {
	ss := timeseries.SeriesSnapshot{
		Kind: "counter",
		Points: []timeseries.Point{
			{TS: 1, V: 0}, {TS: 2, V: 5}, {TS: 3, V: 5}, {TS: 4, V: 2},
		},
	}
	got := rawValues(ss)
	want := []float64{5, 0, 0} // reset at the last point clamps to zero
	if len(got) != len(want) {
		t.Fatalf("deltas = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", got, want)
		}
	}
}

func TestEventBarSpansTimeline(t *testing.T) {
	e := detect.Event{OnsetTS: 50, ClearTS: 100}
	bar := eventBar(e, 0, 100, 10)
	if !strings.HasPrefix(bar, "|") || !strings.HasSuffix(bar, "|") {
		t.Fatalf("bar = %q", bar)
	}
	cells := []rune(bar[1 : len(bar)-1])
	if len(cells) != 10 {
		t.Fatalf("bar width = %d", len(cells))
	}
	if cells[0] != '·' || cells[5] != '█' || cells[9] != '█' {
		t.Fatalf("bar = %q, want second half filled", bar)
	}
	// Open events extend to the end of the snapshot.
	open := eventBar(detect.Event{OnsetTS: 90}, 0, 100, 10)
	if !strings.HasSuffix(open, "█|") {
		t.Fatalf("open bar = %q", open)
	}
}

// TestRenderDeterministic: the full text report over a synthetic snapshot is
// byte-identical across runs and detects the anomaly planted in the data.
func TestRenderDeterministic(t *testing.T) {
	rec := timeseries.NewRecorder(64)
	depth := rec.Series("llc.att-0.p0.replay_depth", timeseries.Gauge)
	credits := rec.Series("llc.att-0.p0.credits", timeseries.Gauge)
	for i := 0; i < 32; i++ {
		v := 0.0
		if i >= 10 && i < 24 {
			v = 8 // sustained replay depth: a ReplayStorm
		}
		depth.Record(int64(i)*100, v)
		credits.Record(int64(i)*100, 256)
	}
	snap := rec.Snapshot()
	events := detect.Analyze(snap, detect.DatapathRules())
	if len(events) != 1 || events[0].Class != detect.ReplayStorm {
		t.Fatalf("events = %+v", events)
	}

	renderTo := func() string {
		f, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		render(f, snap, events, 24)
		f.Close()
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := renderTo(), renderTo()
	if a != b {
		t.Fatalf("render not deterministic:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"2 series", "1 anomalies", "ReplayStorm", "llc.att-0.p0.replay_depth"} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

// TestSnapshotFileRoundTrip: a binary TFTS file written to disk decodes via
// the same sniffing path main uses, in both binary and JSON forms.
func TestSnapshotFileRoundTrip(t *testing.T) {
	rec := timeseries.NewRecorder(8)
	rec.Series("cp.saga_retries", timeseries.Counter).Record(100, 3)
	snap := rec.Snapshot()

	dir := t.TempDir()
	bin := filepath.Join(dir, "flight.tfts")
	if err := os.WriteFile(bin, timeseries.EncodeSnapshot(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := timeseries.DecodeSnapshotAny(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Name != "cp.saga_retries" {
		t.Fatalf("decoded = %+v", got)
	}
	asJSON, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err = timeseries.DecodeSnapshotAny(asJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Kind != "counter" {
		t.Fatalf("decoded JSON = %+v", got)
	}
}
