// Command tftrace analyses trace exports recorded by the simulator and the
// control plane, turning the trace recorders into offline analysis tools.
//
// Datapath mode ingests Chrome trace-event exports (tfbench -trace, tfd
// -trace-events + /v1/trace/snapshot):
//
//	tftrace trace.json                  # per-layer span summaries
//	tftrace -top 5 trace.json           # + critical paths of the 5 slowest transactions
//	tftrace -stalls trace.json          # credit-stall / replay attribution
//	tftrace -layer llc trace.json       # restrict summaries to one layer
//	tftrace -json trace.json            # machine-readable output
//
// A "transaction" is a capi *_req span: the compute-side round trip as the
// host bus sees it. Critical-path extraction lists every event overlapping
// the round trip's window, with a per-layer rollup of overlapped span time.
//
// Control-plane mode (-cp) ingests the saga event log served at /v1/events
// (tfd -saga-events), reconstructs every saga timeline, and rolls them up
// into per-operation stage profiles:
//
//	tftrace -cp events.json             # saga timelines + attach/detach profiles
//	tftrace -cp -json events.json       # machine-readable output
//
// Either mode exits non-zero when the input holds no events: an empty export
// is almost always a collection mistake (tracing off, wrong file, truncated
// download), not a quiet result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"thymesisflow/internal/trace"
)

func main() {
	top := flag.Int("top", 0, "extract critical paths for the N slowest transactions")
	stalls := flag.Bool("stalls", false, "attribute credit-stall and replay time against round trips")
	layer := flag.String("layer", "", "restrict span summaries to one layer (sim|phy|llc|capi|rmmu)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	cpMode := flag.Bool("cp", false, "analyse a control-plane saga event log (/v1/events export) instead of a Chrome trace")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tftrace [-cp] [-top N] [-stalls] [-layer L] [-json] <trace.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tftrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	if *cpMode {
		analyzeCP(f, flag.Arg(0), *jsonOut)
		return
	}
	events, err := trace.ParseChromeTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tftrace: %v\n", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintf(os.Stderr, "tftrace: %s holds no trace events (tracing disabled, or a truncated export?)\n", flag.Arg(0))
		os.Exit(1)
	}

	summaries := trace.Summarize(events)
	if *layer != "" {
		filtered := summaries[:0]
		for _, s := range summaries {
			if s.Layer == *layer {
				filtered = append(filtered, s)
			}
		}
		summaries = filtered
	}
	var paths []trace.CriticalPath
	if *top > 0 {
		paths = trace.CriticalPaths(events, *top)
	}
	var att *trace.StallAttribution
	if *stalls {
		a := trace.AttributeStalls(events)
		att = &a
	}

	if *jsonOut {
		out := struct {
			Events    int                     `json:"events"`
			Summaries []trace.SpanSummary     `json:"summaries"`
			Paths     []trace.CriticalPath    `json:"critical_paths,omitempty"`
			Stalls    *trace.StallAttribution `json:"stalls,omitempty"`
		}{len(events), summaries, paths, att}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tftrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%d events\n\n", len(events))
	fmt.Printf("%-6s %-16s %-8s %8s %12s %10s %10s %10s\n",
		"layer", "name", "kind", "count", "total(ns)", "mean(ns)", "p99(ns)", "max(ns)")
	for _, s := range summaries {
		fmt.Printf("%-6s %-16s %-8s %8d %12.1f %10.1f %10.1f %10.1f\n",
			s.Layer, s.Name, s.Kind, s.Count, s.TotalNS, s.MeanNS, s.P99NS, s.MaxNS)
	}
	for i, cp := range paths {
		fmt.Printf("\ncritical path #%d: %s/%s %.1f ns @ %.1f ns\n",
			i+1, cp.Root.Layer, cp.Root.Name, cp.RootNS, float64(cp.Root.TS)/1e3)
		for _, e := range cp.Events {
			switch e.Ph {
			case "X":
				fmt.Printf("  %12.1f ns  %-6s %-16s %.1f ns\n",
					float64(e.TS)/1e3, e.Layer, e.Name, float64(e.Dur)/1e3)
			case "i":
				fmt.Printf("  %12.1f ns  %-6s %-16s (instant)\n",
					float64(e.TS)/1e3, e.Layer, e.Name)
			}
		}
		fmt.Printf("  by layer:")
		for _, l := range []string{"phy", "llc", "capi", "rmmu", "sim"} {
			if ns, ok := cp.ByLayer[l]; ok {
				fmt.Printf(" %s=%.1fns", l, ns)
			}
		}
		fmt.Println()
	}
	if att != nil {
		fmt.Printf("\nstall attribution over %d round trips (%.1f ns total)\n",
			att.RoundTrips, att.RoundTripNS)
		fmt.Printf("  credit stalls: %10.1f ns (%5.2f%%)\n", att.CreditStallNS, att.CreditPct)
		fmt.Printf("  replay windows:%10.1f ns (%5.2f%%)\n", att.ReplayNS, att.ReplayPct)
	}
}

// analyzeCP is control-plane mode: reconstruct saga timelines from a
// /v1/events export and profile them per operation.
func analyzeCP(f *os.File, name string, jsonOut bool) {
	events, err := trace.ParseEventLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tftrace: %v\n", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintf(os.Stderr, "tftrace: %s holds no control-plane events (saga tracing disabled, or a truncated export?)\n", name)
		os.Exit(1)
	}
	traces := trace.BuildSagaTraces(events)
	if len(traces) == 0 {
		fmt.Fprintf(os.Stderr, "tftrace: %s holds %d events but no complete trace (all events lack trace IDs?)\n", name, len(events))
		os.Exit(1)
	}
	profiles := trace.ProfileSagas(traces)

	if jsonOut {
		out := struct {
			Events   int               `json:"events"`
			Traces   []trace.SagaTrace `json:"traces"`
			Profiles []trace.OpProfile `json:"profiles"`
		}{len(events), traces, profiles}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tftrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%d events, %d saga traces\n\n", len(events), len(traces))
	fmt.Printf("%-10s %-8s %-10s %8s %12s  %s\n",
		"saga", "op", "state", "events", "total(ns)", "stages")
	for _, t := range traces {
		saga := t.Saga
		if saga == "" {
			saga = fmt.Sprintf("trace-%d", t.Trace)
		}
		fmt.Printf("%-10s %-8s %-10s %8d %12d ", saga, t.Op, t.State, t.Events, t.TotalNS)
		for i, s := range t.Stages {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf(" %s=%dns(%.0f%%)", s.Name, s.DurNS, s.Pct)
		}
		fmt.Println()
	}
	for _, p := range profiles {
		fmt.Printf("\n%s: %d sagas, mean %.1f ns, p50 %d ns, p99 %d ns, max %d ns\n",
			p.Op, p.Count, p.MeanNS, p.P50NS, p.P99NS, p.MaxNS)
		for _, s := range p.Stages {
			fmt.Printf("  %-10s %12d ns (%5.1f%%)\n", s.Name, s.DurNS, s.Pct)
		}
	}
}
