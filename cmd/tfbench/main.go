// Command tfbench regenerates the paper's evaluation: every figure of the
// MICRO 2020 ThymesisFlow paper plus this repository's ablations.
//
// Usage:
//
//	tfbench -experiment all            # everything, quick scale
//	tfbench -experiment fig5 -full     # one experiment at calibrated scale
//	tfbench -parallel 0                # all cores; output is byte-identical
//
// Experiments: fig1, rtt, fig5 (stream), fig6 (voltdb-profile),
// fig7 (voltdb-throughput), fig8 (memcached), fig9 (search),
// ablation-replay, ablation-bonding, ablation-migration, all.
//
// -parallel N runs each experiment's independent cells on N workers
// (N=0 means one per core, N=1 — the default — is sequential). Every cell
// owns its simulation kernel and the merged tables are printed in cell
// order, so the output does not depend on N.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thymesisflow/internal/bench"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (fig1|rtt|fig5|fig6|fig7|fig8|fig9|ablation-replay|ablation-bonding|ablation-migration|ablation-hbm|projection-integration|projection-multistack|all)")
	full := flag.Bool("full", false, "run at calibrated (paper) scale instead of quick scale")
	parallel := flag.Int("parallel", 1, "experiment-cell workers: 1 = sequential, 0 = one per core, N = N workers")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
	metricsOut := flag.String("metrics", "", "write a metrics-registry snapshot JSON file")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	w := os.Stdout
	r := bench.NewRunner(*parallel)

	var ring *trace.Ring
	if *traceOut != "" {
		ring = trace.NewRing(trace.DefaultRingCapacity)
		r.Tracer = ring
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		r.Metrics = reg
	}

	runners := []struct {
		names []string
		run   func()
	}{
		{[]string{"fig1"}, func() { bench.Fig1(w, scale) }},
		{[]string{"rtt"}, func() { bench.RTT(w) }},
		{[]string{"fig5", "stream"}, func() { r.Fig5Stream(w, scale) }},
		{[]string{"fig6", "voltdb-profile"}, func() { bench.Fig6Profile(w, scale) }},
		{[]string{"fig7", "voltdb-throughput"}, func() { r.Fig7Throughput(w, scale) }},
		{[]string{"fig8", "memcached"}, func() { r.Fig8Memcached(w, scale) }},
		{[]string{"fig9", "search"}, func() { r.Fig9Search(w, scale) }},
		{[]string{"ablation-replay"}, func() { bench.AblationReplay(w) }},
		{[]string{"ablation-bonding"}, func() { bench.AblationBonding(w) }},
		{[]string{"ablation-migration"}, func() { bench.AblationMigration(w) }},
		{[]string{"ablation-hbm"}, func() { r.AblationHBM(w, scale) }},
		{[]string{"ablation-qos"}, func() { bench.AblationQoS(w) }},
		{[]string{"projection-integration"}, func() { bench.ProjectionIntegration(w) }},
		{[]string{"projection-multistack"}, func() { r.ProjectionMultiStack(w, scale) }},
		{[]string{"projection-switching"}, func() { bench.ProjectionSwitching(w) }},
	}

	want := strings.ToLower(*experiment)
	ran := 0
	for _, r := range runners {
		match := want == "all"
		for _, n := range r.names {
			if n == want {
				match = true
			}
		}
		if !match {
			continue
		}
		r.run()
		fmt.Fprintln(w)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "tfbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	if ring != nil {
		if err := writeTrace(*traceOut, ring); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "trace: %d events (%d dropped) -> %s\n", ring.Len(), ring.Dropped(), *traceOut)
	}
	if reg != nil {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "metrics -> %s\n", *metricsOut)
	}
}

func writeTrace(path string, ring *trace.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ring.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
