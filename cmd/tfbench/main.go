// Command tfbench regenerates the paper's evaluation: every figure of the
// MICRO 2020 ThymesisFlow paper plus this repository's ablations.
//
// Usage:
//
//	tfbench -experiment all            # everything, quick scale
//	tfbench -experiment fig5 -full     # one experiment at calibrated scale
//	tfbench -parallel 0                # all cores; output is byte-identical
//
// Experiments: fig1, rtt, fig5 (stream), fig6 (voltdb-profile),
// fig7 (voltdb-throughput), fig8 (memcached), fig9 (search),
// ablation-replay, ablation-bonding, ablation-migration, rack, replay, all.
//
// Replay mode drives a seeded datacenter-churn trace (attach/detach
// arrivals under diurnal/burst envelopes, memory-pressure walks, agent
// flap storms) through the REAL control plane — journaled sagas over a
// lossy transport, the reconciler, and the autoscaler — at over a thousand
// sagas per simulated minute (docs in EXPERIMENTS.md):
//
//	tfbench -experiment replay -seed 7
//	tfbench -experiment replay -replay-minutes 5 -replay-rate 2000
//	tfbench -experiment replay -replay-out replay.json -metrics m.json
//
// -replay-ha N replicates the saga write-ahead journal across an
// in-process Raft replica set of N control-plane nodes (sagas run on the
// elected leader); -replay-leader-kills K kills the leader mid-saga K
// times at deterministic journal offsets and fails over to a freshly
// elected successor, asserting zero committed-saga loss:
//
//	tfbench -experiment replay -replay-ha 3 -replay-leader-kills 2 -seed 7
//
// The report (stdout table + -replay-out JSON + replay_* metrics) is byte-
// identical per seed.
//
// -parallel N runs each experiment's independent cells on N workers
// (N=0 means one per core, N=1 — the default — is sequential). Every cell
// owns its simulation kernel and the merged tables are printed in cell
// order, so the output does not depend on N.
//
// -shards N partitions each cluster-building experiment (rack, -chaos,
// -latency-attr) into N simulation kernels advanced in conservative
// lookahead windows (one kernel per host placement, docs/PARALLEL_SIM.md);
// N=0 means one per core. Seeded output is byte-identical at every shard
// count — -shards trades nothing but wall-clock:
//
//	tfbench -experiment rack -shards 8     # rack-scale scenario, 8 kernels
//	tfbench -chaos -seed 42 -shards 2      # same report as -shards 1
//
// Latency-attribution mode decomposes the ~950 ns flit RTT stage by stage
// (see docs/OBSERVABILITY.md):
//
//	tfbench -latency-attr
//	tfbench -latency-attr -latency-out breakdown.json
//
// Chaos mode runs the fault-injection conformance campaign instead of the
// figures:
//
//	tfbench -chaos                          # full catalogue, default seed
//	tfbench -chaos -seed 42 -chaos-out r.json
//	tfbench -chaos -chaos-scenario crc-burst -seed 42
//	tfbench -chaos -chaos-scenario cp-agent-flap -seed 42
//
// The campaign covers both the datapath (frame loss, CRC bursts, credit
// starvation, link-down escalation) and the control plane (agent flaps,
// orchestrator crashes mid-saga, duplicate-command storms against the
// saga/journal/reconciliation machinery).
//
// The campaign seed is printed in the report; re-running any scenario with
// that seed reproduces its report byte for byte (see docs/RELIABILITY.md).
// Exit status is non-zero if any scenario violates its invariants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"thymesisflow/internal/bench"
	"thymesisflow/internal/chaos"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (fig1|rtt|fig5|fig6|fig7|fig8|fig9|ablation-replay|ablation-bonding|ablation-migration|ablation-hbm|projection-integration|projection-multistack|rack|all)")
	full := flag.Bool("full", false, "run at calibrated (paper) scale instead of quick scale")
	parallel := flag.Int("parallel", 1, "experiment-cell workers: 1 = sequential, 0 = one per core, N = N workers")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
	metricsOut := flag.String("metrics", "", "write a metrics-registry snapshot JSON file")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection conformance campaign instead of the figures")
	chaosSeed := flag.Int64("seed", 1, "seed for -chaos, -experiment rack and -experiment replay; the same seed reproduces the report byte for byte")
	chaosScenario := flag.String("chaos-scenario", "", "run a single catalogue scenario by name (default: all)")
	chaosOut := flag.String("chaos-out", "", "write the campaign report JSON to a file instead of stdout")
	latencyAttr := flag.Bool("latency-attr", false, "run the per-stage latency-attribution experiment instead of the figures")
	latencyOut := flag.String("latency-out", "", "with -latency-attr, also write the breakdown JSON to this file")
	shards := flag.Int("shards", 1, "simulation shards per cluster: 1 = one sequential kernel, 0 = one per core, N = N kernels in conservative lookahead windows; seeded output is byte-identical at any value")
	replayMinutes := flag.Int("replay-minutes", 0, "with -experiment replay: simulated trace minutes (0 = 2 quick / 5 full)")
	replayRate := flag.Float64("replay-rate", 0, "with -experiment replay: attach arrivals per simulated minute (0 = 800)")
	replayOut := flag.String("replay-out", "", "with -experiment replay: also write the replay report JSON to this file")
	replayWorkers := flag.Int("replay-workers", 1, "with -experiment replay: concurrent saga-issuing goroutines (1 = deterministic sequential driver; N > 1 races issuers against the saga admission limit)")
	replayHA := flag.Int("replay-ha", 0, "with -experiment replay: replicate the saga journal across this many Raft control-plane nodes (0 = single node; requires -replay-workers 1)")
	replayKills := flag.Int("replay-leader-kills", 0, "with -experiment replay -replay-ha N: kill the Raft leader mid-saga this many times at deterministic journal offsets and fail over")
	detectOut := flag.String("detect-out", "", "with -experiment detect: also write the scorecard JSON to this file")
	detectScenario := flag.String("detect-scenario", "", "with -experiment detect: score a single chaos scenario by name (default: full catalogue)")
	snapshotOut := flag.String("snapshot-out", "", "with -experiment detect -detect-scenario: write the recorded series as a binary TFTS snapshot for tfmon")
	flag.Parse()
	if *shards <= 0 {
		*shards = runtime.NumCPU()
	}

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	w := os.Stdout
	r := bench.NewRunner(*parallel)

	if *chaosMode {
		os.Exit(runChaos(r, *chaosSeed, *chaosScenario, *chaosOut, *shards))
	}
	if *latencyAttr {
		if err := bench.LatencyAttrShards(w, *latencyOut, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ring *trace.Ring
	if *traceOut != "" {
		ring = trace.NewRing(trace.DefaultRingCapacity)
		r.Tracer = ring
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		r.Metrics = reg
	}

	runners := []struct {
		names []string
		run   func()
	}{
		{[]string{"fig1"}, func() { bench.Fig1(w, scale) }},
		{[]string{"rtt"}, func() { bench.RTT(w) }},
		{[]string{"fig5", "stream"}, func() { r.Fig5Stream(w, scale) }},
		{[]string{"fig6", "voltdb-profile"}, func() { bench.Fig6Profile(w, scale) }},
		{[]string{"fig7", "voltdb-throughput"}, func() { r.Fig7Throughput(w, scale) }},
		{[]string{"fig8", "memcached"}, func() { r.Fig8Memcached(w, scale) }},
		{[]string{"fig9", "search"}, func() { r.Fig9Search(w, scale) }},
		{[]string{"ablation-replay"}, func() { bench.AblationReplay(w) }},
		{[]string{"ablation-bonding"}, func() { bench.AblationBonding(w) }},
		{[]string{"ablation-migration"}, func() { bench.AblationMigration(w) }},
		{[]string{"ablation-hbm"}, func() { r.AblationHBM(w, scale) }},
		{[]string{"ablation-qos"}, func() { bench.AblationQoS(w) }},
		{[]string{"projection-integration"}, func() { bench.ProjectionIntegration(w) }},
		{[]string{"projection-multistack"}, func() { r.ProjectionMultiStack(w, scale) }},
		{[]string{"projection-switching"}, func() { bench.ProjectionSwitching(w) }},
		{[]string{"rack"}, func() { runRack(w, scale, *shards, *chaosSeed) }},
		{[]string{"replay"}, func() {
			runReplayExperiment(w, scale, *chaosSeed, *replayMinutes, *replayRate, *replayWorkers, *replayHA, *replayKills, *replayOut, reg)
		}},
	}
	if want := strings.ToLower(*experiment); want == "detect" {
		// Not part of "all": the detect scorecard re-runs the whole chaos
		// catalogue with telemetry enabled, and its pass/fail drives the exit
		// status like -chaos does.
		os.Exit(runDetect(w, *chaosSeed, *shards, *detectScenario, *detectOut, *snapshotOut))
	}

	want := strings.ToLower(*experiment)
	ran := 0
	for _, r := range runners {
		match := want == "all"
		for _, n := range r.names {
			if n == want {
				match = true
			}
		}
		if !match {
			continue
		}
		r.run()
		fmt.Fprintln(w)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "tfbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	if ring != nil {
		if err := writeTrace(*traceOut, ring); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "trace: %d events (%d dropped) -> %s\n", ring.Len(), ring.Dropped(), *traceOut)
	}
	if reg != nil {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "metrics -> %s\n", *metricsOut)
	}
}

// runRack runs the rack-scale sharded-simulation scenario. The summary on
// stdout is deterministic (virtual time only); wall-clock goes to stderr so
// scaling runs can be compared without disturbing the seeded output.
func runRack(w *os.File, scale bench.Scale, shards int, seed int64) {
	cfg := bench.RackConfig{Shards: shards, Seed: seed}
	if scale == bench.Full {
		// Full scale: 1280 concurrent flows keep every shard's window
		// dense, so the conservative barriers amortize and the sweep in
		// BENCH_PR6.json shows the multi-core scaling.
		cfg.Hosts = 32
		cfg.Attachments = 160
		cfg.WorkersPerAttachment = 8
		cfg.OpsPerWorker = 432
	}
	start := time.Now()
	rep, err := bench.Rack(w, cfg)
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "tfbench: rack %d hosts / %d shards: %.3fs wall, %d events\n",
		rep.Hosts, rep.Shards, wall.Seconds(), rep.Events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		os.Exit(1)
	}
}

// runReplayExperiment drives the datacenter-churn traffic replay against
// the real control plane (sagas over a lossy transport, journal,
// reconciler, autoscaler). Stdout is a pure function of the seed; wall
// clock goes to stderr.
func runReplayExperiment(w *os.File, scale bench.Scale, seed int64, minutes int, rate float64, workers, haNodes, leaderKills int, out string, reg *metrics.Registry) {
	cfg := bench.ReplayConfig{
		Seed: seed, Minutes: minutes, RatePerMinute: rate, Workers: workers,
		HANodes: haNodes, LeaderKills: leaderKills,
	}
	if cfg.Minutes == 0 && scale == bench.Full {
		cfg.Minutes = 5
	}
	start := time.Now()
	rep, err := bench.Replay(w, cfg)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tfbench: replay %d sim-minutes, %d sagas: %.3fs wall (%.0f sagas/s wall)\n",
		rep.Minutes, rep.SagasCommitted, wall.Seconds(), float64(rep.SagasCommitted)/wall.Seconds())
	if reg != nil {
		bench.RegisterReplayMetrics(reg, &rep)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "replay report (seed %d) -> %s\n", seed, out)
	}
	if len(rep.Invariants) != 0 {
		fmt.Fprintf(os.Stderr, "tfbench: replay invariants violated: %v\n", rep.Invariants)
		os.Exit(1)
	}
}

// runDetect scores the online anomaly detector against the chaos
// catalogue's ground-truth labels (docs/OBSERVABILITY.md). Stdout is a pure
// function of the seed; exit status reflects the precision/recall gate.
func runDetect(w *os.File, seed int64, shards int, scenario, out, snapshotOut string) int {
	cfg := bench.DetectConfig{Seed: seed, Shards: shards, Scenario: scenario}
	if snapshotOut != "" {
		f, err := os.Create(snapshotOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			return 1
		}
		defer f.Close()
		cfg.SnapshotOut = f
	}
	rep, err := bench.Detect(w, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		return 2
	}
	if snapshotOut != "" {
		fmt.Fprintf(w, "flight-recorder snapshot (seed %d, %s) -> %s\n", seed, scenario, snapshotOut)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "detect scorecard (seed %d) -> %s\n", seed, out)
	}
	if !rep.Passed {
		fmt.Fprintf(os.Stderr, "tfbench: detect scorecard FAILED (reproduce with -experiment detect -seed %d)\n", seed)
		return 1
	}
	return 0
}

// runChaos executes the fault-injection campaigns — the datapath catalogue
// and the control-plane (saga/recovery/reconciliation) catalogue — and
// returns the process exit code: 0 when every scenario passed, 1 otherwise.
func runChaos(r *bench.Runner, seed int64, scenario, out string, shards int) int {
	cat := chaos.Catalogue()
	cpCat := chaos.CPCatalogue()
	if scenario != "" {
		if s, ok := chaos.Find(scenario); ok {
			cat = []chaos.Scenario{s}
			cpCat = nil
		} else if cs, ok := chaos.FindCP(scenario); ok {
			cat = nil
			cpCat = []chaos.CPScenario{cs}
		} else {
			fmt.Fprintf(os.Stderr, "tfbench: unknown chaos scenario %q; catalogue:\n", scenario)
			for _, c := range cat {
				fmt.Fprintf(os.Stderr, "  %-28s %s\n", c.Name, c.Description)
			}
			for _, c := range cpCat {
				fmt.Fprintf(os.Stderr, "  %-28s %s\n", c.Name, c.Description)
			}
			return 2
		}
	}
	rep := r.ChaosShards(cat, seed, shards)
	rep.ControlPlane = chaos.RunCPCampaign(cpCat, seed)
	for _, sr := range rep.ControlPlane {
		if !sr.Passed {
			rep.Passed = false
		}
	}
	data, err := rep.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		return 1
	}
	if out != "" {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			return 1
		}
		fmt.Printf("chaos report (seed %d) -> %s\n", seed, out)
	} else {
		fmt.Printf("%s\n", data)
	}
	for _, sr := range rep.Scenarios {
		status := "PASS"
		if !sr.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "%s %-28s seed=%d ops=%d/%d replayed=%d state=%s\n",
			status, sr.Name, sr.Seed, sr.OpsOK, sr.Ops, sr.LLC.TxReplayed, sr.FinalState)
	}
	for _, sr := range rep.ControlPlane {
		status := "PASS"
		if !sr.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "%s %-28s seed=%d attach=%d detach=%d crashes=%d retries=%d repairs=%d\n",
			status, sr.Name, sr.Seed, sr.Attaches, sr.Detaches, sr.Crashes,
			sr.Counters.SagaRetries, sr.Counters.ReconcileRepairs)
	}
	if !rep.Passed {
		fmt.Fprintf(os.Stderr, "tfbench: campaign FAILED (reproduce with -chaos -seed %d)\n", seed)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tfbench: campaign passed (reproduce with -chaos -seed %d)\n", seed)
	return 0
}

func writeTrace(path string, ring *trace.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ring.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
