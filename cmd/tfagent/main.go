// Command tfagent runs a standalone ThymesisFlow node agent as an HTTP
// daemon: it accepts configuration pushes (POST /v1/config) from the
// control plane, enforcing the trust check of Section IV-C, and exposes its
// applied-command log (GET /v1/log).
//
// In the simulated single-process deployments (tfd, examples) agents run
// in-process; tfagent demonstrates the distributed form.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strings"

	"thymesisflow/internal/agent"
)

func main() {
	listen := flag.String("listen", ":8441", "HTTP listen address")
	host := flag.String("host", "node0", "host this agent manages")
	trusted := flag.String("trusted-token", "tfd-internal-trust", "control-plane token to trust")
	flag.Parse()

	a := agent.New(*host, *trusted)
	mux := http.NewServeMux()

	mux.HandleFunc("/v1/config", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		var cmd agent.Command
		if err := json.NewDecoder(r.Body).Decode(&cmd); err != nil {
			http.Error(w, "bad command body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := a.Apply(token, cmd); err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"status": "applied"}) //nolint:errcheck
	})

	mux.HandleFunc("/v1/log", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"host":     a.Host(),
			"applied":  a.Applied(),
			"rejected": a.Rejected(),
		})
	})

	log.Printf("tfagent: managing %s, listening on %s", *host, *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}
