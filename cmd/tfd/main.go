// Command tfd is the ThymesisFlow control-plane daemon: it brings up a
// simulated rack (hosts, cabling, node agents), then serves the
// software-defined memory REST API.
//
// Usage:
//
//	tfd -listen :8440 -hosts node0,node1,node2 -admin-token secret
//
// With -journal PATH, every attach/detach saga is write-ahead journaled to
// the file; on boot the daemon replays the journal, finishing or
// compensating sagas a previous crash left in flight. With
// -reconcile-interval D, a background loop periodically diffs control-plane
// records against executor/agent ground truth and repairs divergence. With
// -ha-nodes N (N > 1), the saga journal is replicated across an in-process
// Raft replica set of N control-plane nodes: writes commit only on quorum
// ack, /v1/raft/status (and tfctl raft) report the replica view, and
// /v1/readyz carries the node's role; combined with -journal, each
// replica's term/vote/log persists at PATH.raft-<id>. Note
// that tfd's rack is simulated in-process: its datapath state dies with the
// process, so after a restart the reconciler will (correctly) tear down
// recovered records whose datapath no longer exists.
//
// Then drive it with tfctl (or curl):
//
//	tfctl -server http://localhost:8440 -token secret \
//	      attach -compute node0 -donor node1 -bytes 1073741824 -channels 2
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/controlplane"
	"thymesisflow/internal/core"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/raft"
	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
	"thymesisflow/internal/trace"
)

func main() {
	listen := flag.String("listen", ":8440", "HTTP listen address")
	hosts := flag.String("hosts", "node0,node1,node2", "comma-separated host names of the simulated rack")
	transceivers := flag.Int("transceivers", 2, "transceivers per endpoint")
	adminToken := flag.String("admin-token", "tf-admin", "bearer token with write access")
	readerToken := flag.String("reader-token", "tf-reader", "bearer token with read-only access")
	traceEvents := flag.Int("trace-events", 1<<16, "trace ring capacity in events (0 disables tracing)")
	sagaEvents := flag.Int("saga-events", 1<<14, "saga event log capacity; spans every saga step, served under /v1/events and /v1/sagas/{id}/trace (0 disables)")
	latencyAttr := flag.Bool("latency", false, "enable per-stage latency attribution, served under /v1/latency")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (admin token required)")
	journalPath := flag.String("journal", "", "write-ahead saga journal file; replayed on boot for crash recovery (empty = in-memory)")
	journalSyncEvery := flag.Int("journal-sync-every", 1, "with -journal: fsync group-commit threshold; 1 syncs per record (safest), N batches up to N records per fsync (a crash may lose the last N-1)")
	reconcileEvery := flag.Duration("reconcile-interval", 0, "run the reconciliation loop at this interval (0 disables)")
	flightRecorder := flag.Bool("flight-recorder", false, "sample control-plane saga counters into flight-recorder time series with online anomaly detection, served under /v1/timeseries and /v1/anomalies")
	flightInterval := flag.Duration("flight-interval", time.Second, "with -flight-recorder: wall-clock sampling period")
	haNodes := flag.Int("ha-nodes", 0, "replicate the saga journal across this many in-process Raft control-plane nodes (0 = single node); /v1/raft/status and tfctl raft go live, and /v1/readyz reports the node's role")
	haSeed := flag.Int64("ha-seed", 1, "with -ha-nodes: seed for the replica set's randomized election timers")
	flag.Parse()

	names := strings.Split(*hosts, ",")
	if len(names) < 2 {
		log.Fatal("tfd: need at least two hosts")
	}

	cluster := core.NewCluster()
	model := controlplane.NewModel()
	for _, n := range names {
		n = strings.TrimSpace(n)
		if _, err := cluster.AddHost(core.DefaultHostConfig(n)); err != nil {
			log.Fatalf("tfd: %v", err)
		}
		if err := model.AddHost(n, *transceivers); err != nil {
			log.Fatalf("tfd: %v", err)
		}
	}
	// Fully cabled point-to-point rack: compute transceiver i of each host
	// to memory transceiver i of every other host.
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ct := model.Transceivers(a, controlplane.LabelComputeEP)
			mt := model.Transceivers(b, controlplane.LabelMemoryEP)
			for i := 0; i < len(ct) && i < len(mt); i++ {
				if err := model.Cable(ct[i], mt[i]); err != nil {
					log.Fatalf("tfd: cabling: %v", err)
				}
			}
		}
	}

	const cpToken = "tfd-internal-trust"
	svc := controlplane.NewService(model, controlplane.ClusterExecutor{Cluster: cluster}, cpToken)
	if *sagaEvents > 0 {
		// Before RegisterAgent, so agent-side command handling joins the
		// same event log as the saga engine.
		svc.EnableSagaTracing(*sagaEvents)
		log.Printf("tfd: saga tracing on (%d-event log), /v1/events and /v1/sagas/{id}/trace live", *sagaEvents)
	}
	for _, n := range names {
		svc.RegisterAgent(agent.New(strings.TrimSpace(n), cpToken))
	}
	var replicas *controlplane.ReplicaSet
	switch {
	case *haNodes > 1:
		// HA: the saga WAL is the Raft-replicated journal. With -journal,
		// each replica persists its term/vote/log beside the journal path;
		// without it, replication is in-memory (still quorum-acked).
		//
		// The replica set is an in-process simulation on a virtual clock
		// that advances only inside journal appends (plus the boot-time
		// election below), and the leader/gate/journal binding is fixed at
		// boot. On an idle daemon /v1/raft/status and /v1/readyz therefore
		// report state as of the last write, and no runtime re-election
		// occurs; failover behavior is exercised by the chaos scenarios
		// and crash-point tests, which drive the clock explicitly. See
		// docs/RELIABILITY.md "HA control plane".
		ids := make([]string, *haNodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("cp-%02d", i)
		}
		var storageFn func(id string) raft.Storage
		if *journalPath != "" {
			storageFn = func(id string) raft.Storage {
				st, err := raft.OpenFileStorage(*journalPath + ".raft-" + id)
				if err != nil {
					log.Fatalf("tfd: raft storage %s: %v", id, err)
				}
				return st
			}
		}
		rs, err := controlplane.NewReplicaSetWithStorage(ids, *haSeed, storageFn)
		if err != nil {
			log.Fatalf("tfd: replica set: %v", err)
		}
		leader, err := rs.ElectLeader(800)
		if err != nil {
			log.Fatalf("tfd: election: %v", err)
		}
		replicas = rs
		svc.SetJournal(rs.Journal(leader))
		svc.SetLeaderGate(rs.Gate(leader))
		svc.SetRaftStatus(func() controlplane.RaftStatus { return rs.StatusFor(leader) })
		rep, err := svc.Recover()
		if err != nil {
			log.Fatalf("tfd: journal recovery: %v", err)
		}
		log.Printf("tfd: raft replica set of %d nodes up, leader %s (term %d)", *haNodes, leader, rs.StatusFor(leader).Term)
		if rep.SagasSeen > 0 {
			log.Printf("tfd: recovered replicated journal: %d sagas seen, %d attachments restored, %d rolled forward, %d compensated, %d re-parked",
				rep.SagasSeen, rep.Restored, rep.RolledForward, rep.Compensated, rep.Reparked)
		}
	case *journalPath != "":
		j, err := controlplane.OpenFileJournal(*journalPath)
		if err != nil {
			log.Fatalf("tfd: %v", err)
		}
		if *journalSyncEvery > 1 {
			// Cap batching delay at 50ms so a quiet daemon still commits
			// promptly.
			j.SetSyncEvery(*journalSyncEvery, 50*time.Millisecond)
			log.Printf("tfd: journal group commit: fsync every %d records", *journalSyncEvery)
		}
		svc.SetJournal(j)
		rep, err := svc.Recover()
		if err != nil {
			log.Fatalf("tfd: journal recovery: %v", err)
		}
		if rep.SagasSeen > 0 {
			log.Printf("tfd: recovered journal: %d sagas seen, %d attachments restored, %d rolled forward, %d compensated, %d re-parked",
				rep.SagasSeen, rep.Restored, rep.RolledForward, rep.Compensated, rep.Reparked)
		}
	}
	if *reconcileEvery > 0 {
		stop := svc.StartReconciler(*reconcileEvery)
		defer stop()
		log.Printf("tfd: reconciliation loop every %s", *reconcileEvery)
	}
	api := controlplane.NewAPI(svc, controlplane.AuthConfig{
		AdminTokens:  []string{*adminToken},
		ReaderTokens: []string{*readerToken},
	})

	// Live telemetry: a metrics registry over the whole cluster and a
	// bounded trace ring on the shared kernel, served read-only under
	// /v1/metrics and /v1/trace/snapshot.
	reg := metrics.NewRegistry()
	cluster.RegisterMetrics(reg, "")
	var ring *trace.Ring
	if *traceEvents > 0 {
		ring = trace.NewRing(*traceEvents)
		cluster.K.SetTracer(ring)
	}
	svc.SetTelemetry(reg, ring)
	if *latencyAttr {
		cluster.EnableLatency()
		svc.SetLatency(cluster)
	}
	if *enablePprof {
		api.EnablePprof()
	}
	if *flightRecorder {
		rec := timeseries.NewRecorder(0)
		det := detect.New(detect.ControlPlaneRules())
		svc.SetFlightRecorder(rec, det)
		sampler := controlplane.NewFlightSampler(svc, rec, det)
		if replicas != nil {
			sampler.ObserveRaft()
		}
		start := time.Now()
		go func() {
			for range time.Tick(*flightInterval) {
				sampler.Sample(time.Since(start).Nanoseconds())
			}
		}()
		log.Printf("tfd: flight recorder on (%s tick), /v1/timeseries and /v1/anomalies live", *flightInterval)
	}

	log.Printf("tfd: rack of %d hosts up, serving on %s", len(names), *listen)
	log.Fatal(http.ListenAndServe(*listen, api))
}
