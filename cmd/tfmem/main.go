// Command tfmem is a memory microbenchmark (in the spirit of lmbench / the
// Intel Memory Latency Checker) for the simulated ThymesisFlow testbed: it
// reports pointer-chase latency and streaming bandwidth for local DRAM and
// for each disaggregated configuration, making the cost model behind every
// experiment directly inspectable.
//
// Usage:
//
//	tfmem                 # latency + bandwidth for all configurations
//	tfmem -threads 8      # bandwidth at a specific thread count
package main

import (
	"flag"
	"fmt"
	"log"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/stream"
)

func main() {
	threads := flag.Int("threads", 8, "threads for the bandwidth sweep")
	chases := flag.Int("chases", 2000, "dependent loads for the latency probe")
	flag.Parse()

	fmt.Println("ThymesisFlow memory microbenchmark")
	fmt.Printf("%-24s %16s %18s\n", "configuration", "load-to-use", "stream copy GiB/s")

	for _, cfg := range []core.MemoryConfig{
		core.ConfigLocal,
		core.ConfigSingleDisaggregated,
		core.ConfigBondingDisaggregated,
		core.ConfigInterleaved,
	} {
		lat := latencyProbe(cfg, *chases)
		bw := bandwidthProbe(cfg, *threads)
		fmt.Printf("%-24s %16v %18.2f\n", cfg, lat, bw)
	}
	fmt.Println("\nreference points: local DRAM ~90ns; ThymesisFlow datapath RTT ~950ns;")
	fmt.Println("one channel 12.5 GiB/s; OpenCAPI C1 ceiling ~16 GiB/s.")
}

// latencyProbe measures average dependent-load latency: each access must
// complete before the next address is known, so no latency is hidden.
func latencyProbe(cfg core.MemoryConfig, chases int) sim.Time {
	tb, err := core.NewTestbed(cfg, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := tb.Server.Mem.Alloc(256<<20, tb.Placer())
	if err != nil {
		log.Fatal(err)
	}
	var avg sim.Time
	tb.Cluster.K.Go("probe", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		lines := buf.Size / mem.CachelineSize
		state := uint64(12345)
		start := p.Now()
		for i := 0; i < chases; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			off := int64(state%uint64(lines)) * mem.CachelineSize
			th.Access(p, buf.Addr(off), 8, false)
		}
		avg = (p.Now() - start) / sim.Time(chases)
	})
	tb.Cluster.K.Run()
	return avg
}

// bandwidthProbe runs the STREAM copy kernel.
func bandwidthProbe(cfg core.MemoryConfig, threads int) float64 {
	tb, err := core.NewTestbed(cfg, 4<<30)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stream.Run(tb.Server, tb.Placer(), stream.Config{
		Elements:   20_000_000,
		Threads:    threads,
		Iterations: 1,
		ChunkBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		if r.Kernel == stream.Copy {
			return r.GiBps
		}
	}
	return 0
}
