# Developer entry points. `make check` is the tier-1 gate (lint + vet +
# build + race-enabled tests — the parallel experiment engine and the
# sharded simulation runtime are real concurrency, so the race detector is
# load-bearing). `make bench-quick` snapshots wall-clock and allocation
# numbers into BENCH_PR10.json.

GO ?= go

.PHONY: check ci test build vet lint race chaos fuzz-smoke replay-smoke ha-smoke detect-smoke bench-quick bench trace-demo

check: lint vet build
	$(GO) test -race ./...

# Full CI gate: everything `check` runs, plus an uncached race pass over the
# concurrency-bearing packages, the chaos conformance campaign through the
# tfbench binary, a one-simulated-minute churn replay against the real
# control plane, a single-scenario anomaly-detection scorecard, and a short
# fuzz smoke of the frame and snapshot decoders, and an HA smoke that
# replays churn against a 3-node replicated control plane while killing
# the Raft leader mid-saga. This is the target a pipeline should invoke.
ci: check race chaos replay-smoke ha-smoke detect-smoke fuzz-smoke

# Uncached (-count=1) race-detector pass over the packages with real
# concurrency: the LLC protocol under the parallel experiment engine, the
# cluster, the sharded simulation runtime (kernel stepping + conservative
# window barriers), the telemetry surfaces (metrics registry, trace ring,
# control-plane handlers) that are read while the simulation runs, and the
# saga/journal/reconciler machinery plus the node agents it drives, and
# the churn-trace replay driver that hammers the control plane.
race:
	$(GO) test -race -count=1 ./internal/llc/ ./internal/core/ \
		./internal/sim/ ./internal/sim/shard/ ./internal/chaos/ \
		./internal/metrics/ ./internal/trace/ ./internal/controlplane/ \
		./internal/agent/ ./internal/dctrace/ ./internal/bench/ \
		./internal/raft/ ./internal/timeseries/...

# Run the fault-injection conformance campaigns (docs/RELIABILITY.md):
# the datapath catalogue and the control-plane saga/recovery/reconciliation
# catalogue. Fails if any scenario violates its invariants.
chaos:
	$(GO) run ./cmd/tfbench -chaos -seed 1 -parallel 0 -chaos-out chaos_report.json

# One simulated minute of seeded datacenter churn (attach/detach arrivals,
# flap storms, pressure walks) replayed through the real saga engine with
# transport faults on. Exits non-zero on any invariant violation.
replay-smoke:
	$(GO) run ./cmd/tfbench -experiment replay -replay-minutes 1 -seed 1 >/dev/null

# HA smoke: the same churn replay against a 3-node Raft-replicated control
# plane, killing the leader mid-saga twice and failing over to a freshly
# elected successor. Exits non-zero on any invariant violation (committed-
# saga loss, diverged replica logs, orphaned donor memory).
ha-smoke:
	$(GO) run ./cmd/tfbench -experiment replay -replay-minutes 1 -seed 1 \
		-replay-ha 3 -replay-leader-kills 2 >/dev/null

# One chaos scenario scored against its ground-truth labels through the
# online anomaly detector — exits non-zero below the precision/recall gate.
detect-smoke:
	$(GO) run ./cmd/tfbench -experiment detect -detect-scenario replay-storm -seed 1 >/dev/null

# Brief coverage-guided fuzz of the LLC frame decoder and the flight-
# recorder snapshot decoder against corrupted and truncated wire images.
fuzz-smoke:
	$(GO) test ./internal/llc/ -fuzz FuzzDecodeCorrupted -fuzztime 10s
	$(GO) test ./internal/timeseries/ -fuzz FuzzSeriesDecode -fuzztime 10s

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Micro-benchmarks for the sim kernel (including the run-to-horizon
# windowed stepping), the shard group barrier, and the dcsim placement
# index.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernel|BenchmarkGroup|BenchmarkDcsim' \
		-benchmem -benchtime 5x ./internal/sim/ ./internal/sim/shard/ \
		./internal/dcsim/

# Wall-clock / allocation snapshot: sequential vs parallel quick suite,
# kernel/placement micro-benchmarks, the sharded rack-scaling sweep
# (tfbench -experiment rack at 1/2/4/8 shards), the saga path with
# tracing off vs on, the churn-replay saga throughput, the flight
# recorder off vs on, the journal fsync group-commit sweep, and the
# Raft quorum-commit append latency (3/5 nodes), written to
# BENCH_PR10.json.
bench-quick:
	sh scripts/benchsnap.sh BENCH_PR10.json

# Produce a sample cross-layer trace (and metrics snapshot) from the quick
# Figure 5 run: open trace_fig5.json in Perfetto (https://ui.perfetto.dev)
# or chrome://tracing. See docs/OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/tfbench -experiment fig5 -trace trace_fig5.json -metrics metrics_fig5.json
