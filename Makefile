# Developer entry points. `make check` is the tier-1 gate (lint + vet +
# build + race-enabled tests — the parallel experiment engine is the repo's
# first real concurrency, so the race detector is load-bearing). `make
# bench-quick` snapshots wall-clock and allocation numbers into
# BENCH_PR1.json.

GO ?= go

.PHONY: check test build vet lint bench-quick bench trace-demo

check: lint vet build
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Micro-benchmarks for the sim kernel and dcsim placement index.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernel|BenchmarkDcsim' -benchmem \
		-benchtime 5x ./internal/sim/ ./internal/dcsim/

# Wall-clock / allocation snapshot: sequential vs parallel quick suite plus
# kernel and placement micro-benchmarks, written to BENCH_PR1.json.
bench-quick:
	sh scripts/benchsnap.sh BENCH_PR1.json

# Produce a sample cross-layer trace (and metrics snapshot) from the quick
# Figure 5 run: open trace_fig5.json in Perfetto (https://ui.perfetto.dev)
# or chrome://tracing. See docs/OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/tfbench -experiment fig5 -trace trace_fig5.json -metrics metrics_fig5.json
