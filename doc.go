// Package thymesisflow is a from-scratch Go reproduction of the MICRO 2020
// paper "ThymesisFlow: A Software-Defined, HW/SW co-Designed Interconnect
// Stack for Rack-Scale Memory Disaggregation" (Pinto et al., IBM Research).
//
// The original system is an FPGA datapath on the POWER9 memory bus; this
// repository rebuilds the entire stack as a deterministic discrete-event
// simulation with functional software components on top:
//
//   - internal/sim — the discrete-event kernel (virtual time, processes,
//     resources, bandwidth pipes).
//   - internal/capi, rmmu, route, llc, phy, endpoint — the ThymesisFlow
//     interconnect: OpenCAPI-style transactions, the Remote MMU section
//     table, the routing layer with channel bonding, the credit/replay
//     link-layer protocol, and the two endpoint personalities.
//   - internal/mem, hotplug, numa — the memory-hierarchy and OS substrate:
//     caches, NUMA nodes, sparse-section memory hotplug, page placement
//     policies and AutoNUMA migration.
//   - internal/graphdb, controlplane, agent — the software-defined control
//     plane: graph-modelled topology, path planning with reservations, a
//     REST API with access control, and trusted per-host agents.
//   - internal/core — the public facade: Cluster/Host/Attach/Detach and the
//     paper's five experimental memory configurations.
//   - internal/dcsim, dctrace — the Figure 1 motivation study.
//   - internal/workloads/... — STREAM, a VoltDB-like partitioned in-memory
//     DB driven by YCSB, a Memcached-like cache driven by the Facebook ETC
//     model, and an Elasticsearch-like engine driven by the Rally "nested"
//     track.
//   - internal/bench — the harness regenerating every table and figure.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package thymesisflow
