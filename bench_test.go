package thymesisflow_test

import (
	"io"
	"os"
	"testing"

	"thymesisflow/internal/bench"
)

// benchOut routes harness tables to stdout when -v is set, else discards.
func benchOut(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkFig1DataCentreSim regenerates Figure 1: resource fragmentation
// and switch-off potential, fixed vs disaggregated data-centre.
func BenchmarkFig1DataCentreSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig1(benchOut(b), bench.Quick)
	}
}

// BenchmarkRTT regenerates the Section V headline: the ~950ns datapath
// round trip measured through the full transaction path.
func BenchmarkRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RTT(benchOut(b))
	}
}

// BenchmarkFig5Stream regenerates Figure 5: STREAM bandwidth per kernel,
// thread count and configuration.
func BenchmarkFig5Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig5Stream(benchOut(b), bench.Quick)
	}
}

// BenchmarkFig5StreamParallel runs the same figure through the parallel
// experiment engine with one worker per core. Output and returned metrics
// are byte-identical to the sequential run (asserted in
// internal/bench/runner_test.go); only wall-clock changes.
func BenchmarkFig5StreamParallel(b *testing.B) {
	r := bench.NewRunner(0)
	for i := 0; i < b.N; i++ {
		r.Fig5Stream(benchOut(b), bench.Quick)
	}
}

// BenchmarkFig6VoltDBProfile regenerates Figure 6: VoltDB IPC/UCC profiling
// plus the Section VI-D stall fractions.
func BenchmarkFig6VoltDBProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6Profile(benchOut(b), bench.Quick)
	}
}

// BenchmarkFig7VoltDBThroughput regenerates Figure 7: YCSB A and E
// throughput across partition counts and configurations.
func BenchmarkFig7VoltDBThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7Throughput(benchOut(b), bench.Quick)
	}
}

// BenchmarkFig8Memcached regenerates Figure 8: the Memcached GET latency
// distribution per configuration.
func BenchmarkFig8Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8Memcached(benchOut(b), bench.Quick)
	}
}

// BenchmarkFig9Search regenerates Figure 9: the ESRally "nested" track
// throughput across challenges, shard counts and configurations.
func BenchmarkFig9Search(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9Search(benchOut(b), bench.Quick)
	}
}

// BenchmarkAblationReplay measures the LLC replay protocol's cost under
// injected frame loss (ablation A1).
func BenchmarkAblationReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationReplay(benchOut(b))
	}
}

// BenchmarkAblationBonding compares bonding against single-channel pinning
// (ablation A2).
func BenchmarkAblationBonding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationBonding(benchOut(b))
	}
}

// BenchmarkAblationMigration quantifies AutoNUMA page migration on the
// interleaved configuration (ablation A3).
func BenchmarkAblationMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationMigration(benchOut(b))
	}
}

// BenchmarkAblationHBM evaluates the Section VII HBM caching layer
// (ablation A4).
func BenchmarkAblationHBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationHBM(benchOut(b), bench.Quick)
	}
}

// BenchmarkAblationQoS demonstrates weighted channel sharing vs plain
// round-robin (ablation A5, the Section IV-A3 extension).
func BenchmarkAblationQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationQoS(benchOut(b))
	}
}

// BenchmarkProjectionIntegration prints the Section VII latency projections
// for deeper hardware integration (P1).
func BenchmarkProjectionIntegration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ProjectionIntegration(benchOut(b))
	}
}

// BenchmarkProjectionMultiStack sweeps channels/donors toward the POWER9
// platform limit (P2).
func BenchmarkProjectionMultiStack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ProjectionMultiStack(benchOut(b), bench.Quick)
	}
}

// BenchmarkProjectionSwitching compares direct attach against one-switch
// rack fabrics (P3).
func BenchmarkProjectionSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ProjectionSwitching(benchOut(b))
	}
}
