module thymesisflow

go 1.22
