#!/bin/sh
# Formatting gate: fail when any tracked Go file differs from gofmt output.
# Part of `make check` (see Makefile).
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "lint: files need gofmt:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "lint: gofmt clean"
