#!/bin/sh
# benchsnap.sh OUT.json — record a wall-clock/allocation snapshot:
#   * quick-scale tfbench full suite, sequential (-parallel 1) vs all
#     cores (-parallel 0)
#   * sim kernel schedule/run micro-benchmark (ns/op, allocs/op)
#   * dcsim placement micro-benchmark (ns/op)
#   * full-datapath cacheline load with latency attribution off vs on
#     (ns/op, allocs/op) — the on/off delta is the attribution overhead,
#     and the off row documents the disabled path's allocation count
# The parallel and sequential suites print byte-identical output (asserted
# by internal/bench tests); only wall-clock may differ.
set -eu

out=${1:-BENCH_PR1.json}
bin=$(mktemp -t tfbench.XXXXXX)
trap 'rm -f "$bin"' EXIT

go build -o "$bin" ./cmd/tfbench

now_s() { date +%s.%N 2>/dev/null || date +%s; }
elapsed() { awk "BEGIN{printf \"%.2f\", $2 - $1}"; }

t0=$(now_s)
"$bin" -parallel 1 >/dev/null
t1=$(now_s)
seq_s=$(elapsed "$t0" "$t1")

t0=$(now_s)
"$bin" -parallel 0 >/dev/null
t1=$(now_s)
par_s=$(elapsed "$t0" "$t1")

kern=$(go test -run xxx -bench 'BenchmarkKernelScheduleRun$' -benchmem \
	-benchtime 5x ./internal/sim/ | \
	awk '$1 ~ /^BenchmarkKernelScheduleRun(-[0-9]+)?$/ {print $3, $7}')
kern_ns=$(echo "$kern" | awk '{print $1}')
kern_allocs=$(echo "$kern" | awk '{print $2}')

place=$(go test -run xxx -bench 'BenchmarkDcsimPlace/fixed' -benchtime 3x \
	./internal/dcsim/ | awk '/BenchmarkDcsimPlace\/fixed/ {print $3}')

attr=$(go test -run xxx -bench 'BenchmarkClusterLoadAttr' -benchmem \
	-benchtime 2000x ./internal/core/)
attr_off_ns=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOff/ {print $3}')
attr_off_allocs=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOff/ {print $7}')
attr_on_ns=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOn/ {print $3}')
attr_on_allocs=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOn/ {print $7}')

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)

cat > "$out" <<EOF
{
  "snapshot": "quick-suite wall clock + kernel/placement/attribution micro-benchmarks",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_cores": $cores,
  "quick_suite_wall_seconds": {
    "sequential": $seq_s,
    "parallel_all_cores": $par_s
  },
  "kernel_schedule_run": {
    "ns_per_op": $kern_ns,
    "allocs_per_op": $kern_allocs
  },
  "dcsim_place_fixed_ns_per_op": $place,
  "cluster_load_latency_attr": {
    "off": { "ns_per_op": $attr_off_ns, "allocs_per_op": $attr_off_allocs },
    "on": { "ns_per_op": $attr_on_ns, "allocs_per_op": $attr_on_allocs }
  }
}
EOF
echo "wrote $out (sequential ${seq_s}s, parallel ${par_s}s)"
