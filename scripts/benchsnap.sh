#!/bin/sh
# benchsnap.sh OUT.json — record a wall-clock/allocation snapshot:
#   * quick-scale tfbench full suite, sequential (-parallel 1) vs all
#     cores (-parallel 0)
#   * sim kernel schedule/run micro-benchmark (ns/op, allocs/op)
#   * dcsim placement micro-benchmark (ns/op)
#   * full-datapath cacheline load with latency attribution off vs on
#     (ns/op, allocs/op) — the on/off delta is the attribution overhead,
#     and the off row documents the disabled path's allocation count
#   * sharded-scaling: the rack-scale scenario (tfbench -experiment rack)
#     at 1/2/4/8 simulation shards — the simulation results are identical
#     across the sweep (asserted by internal/bench tests; the shard-health
#     section describes the runtime and varies with the shard count);
#     only wall-clock differs
#   * control-plane saga path with tracing off vs on (ns/op, allocs/op) —
#     the off row documents that the disabled-tracing saga path adds zero
#     allocations over the pre-tracing baseline
#   * churn replay: two simulated minutes of datacenter-shaped load
#     (tfbench -experiment replay) through the real saga engine with
#     transport faults on — committed sagas per simulated minute plus the
#     wall clock for the whole replay
#   * flight recorder: the full-datapath cacheline load with the recorder
#     sampling at the default 5 us tick vs off — the off row must stay
#     allocation-identical to the latency-attribution off row (the
#     disabled recorder is not on the datapath at all)
#   * journal append: FileJournal appends at fsync group-commit sizes
#     1/8/64 — the per-record fsync cost amortized across the batch
#   * raft append: quorum-commit append latency on 3- and 5-node Raft
#     clusters — each append proposes through the leader and pumps the
#     virtual network until a majority acks, so the number is the HA
#     analogue of the journal_append group-commit rows
# The parallel and sequential suites print byte-identical output (asserted
# by internal/bench tests); only wall-clock may differ.
set -eu

out=${1:-BENCH_PR10.json}
bin=$(mktemp -t tfbench.XXXXXX)
trap 'rm -f "$bin"' EXIT

go build -o "$bin" ./cmd/tfbench

now_s() { date +%s.%N 2>/dev/null || date +%s; }
elapsed() { awk "BEGIN{printf \"%.2f\", $2 - $1}"; }

t0=$(now_s)
"$bin" -parallel 1 >/dev/null 2>&1
t1=$(now_s)
seq_s=$(elapsed "$t0" "$t1")

t0=$(now_s)
"$bin" -parallel 0 >/dev/null 2>&1
t1=$(now_s)
par_s=$(elapsed "$t0" "$t1")

# Sharded-scaling sweep: same seeded rack, increasing shard counts. The
# -full scenario (32 hosts, 160 attachments, 1280 flows) is big enough for
# the window parallelism to dominate the barrier cost.
rack_rows=
for shards in 1 2 4 8; do
	t0=$(now_s)
	"$bin" -experiment rack -full -shards "$shards" >/dev/null 2>&1
	t1=$(now_s)
	rack_s=$(elapsed "$t0" "$t1")
	rack_rows="$rack_rows    { \"shards\": $shards, \"wall_seconds\": $rack_s },
"
done
rack_rows=$(printf '%s' "$rack_rows" | sed '$s/,$//')

kern=$(go test -run xxx -bench 'BenchmarkKernelScheduleRun$' -benchmem \
	-benchtime 5x ./internal/sim/ | \
	awk '$1 ~ /^BenchmarkKernelScheduleRun(-[0-9]+)?$/ {print $3, $7}')
kern_ns=$(echo "$kern" | awk '{print $1}')
kern_allocs=$(echo "$kern" | awk '{print $2}')

winb=$(go test -run xxx -bench 'BenchmarkKernelRunBeforeWindows$' -benchmem \
	-benchtime 5x ./internal/sim/ | \
	awk '$1 ~ /^BenchmarkKernelRunBeforeWindows(-[0-9]+)?$/ {print $3, $9}')
win_ns=$(echo "$winb" | awk '{print $1}')
win_allocs=$(echo "$winb" | awk '{print $2}')

barrier=$(go test -run xxx -bench 'BenchmarkGroupBarrierOverhead$' \
	-benchtime 3x ./internal/sim/shard/ | \
	awk '$1 ~ /^BenchmarkGroupBarrierOverhead(-[0-9]+)?$/ {print $5}')

place=$(go test -run xxx -bench 'BenchmarkDcsimPlace/fixed' -benchtime 3x \
	./internal/dcsim/ | awk '/BenchmarkDcsimPlace\/fixed/ {print $3}')

saga=$(go test -run xxx -bench 'BenchmarkSagaAttachDetach' -benchmem \
	-benchtime 200x ./internal/controlplane/)
saga_off_ns=$(echo "$saga" | awk '$1 ~ /^BenchmarkSagaAttachDetach(-[0-9]+)?$/ {print $3}')
saga_off_allocs=$(echo "$saga" | awk '$1 ~ /^BenchmarkSagaAttachDetach(-[0-9]+)?$/ {print $7}')
saga_on_ns=$(echo "$saga" | awk '$1 ~ /^BenchmarkSagaAttachDetachTraced(-[0-9]+)?$/ {print $3}')
saga_on_allocs=$(echo "$saga" | awk '$1 ~ /^BenchmarkSagaAttachDetachTraced(-[0-9]+)?$/ {print $7}')

attr=$(go test -run xxx -bench 'BenchmarkClusterLoadAttr' -benchmem \
	-benchtime 2000x ./internal/core/)
attr_off_ns=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOff/ {print $3}')
attr_off_allocs=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOff/ {print $7}')
attr_on_ns=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOn/ {print $3}')
attr_on_allocs=$(echo "$attr" | awk '/BenchmarkClusterLoadAttrOn/ {print $7}')

rec=$(go test -run xxx -bench 'BenchmarkClusterLoadRecorderOn' -benchmem \
	-benchtime 2000x ./internal/core/)
rec_on_ns=$(echo "$rec" | awk '/BenchmarkClusterLoadRecorderOn/ {print $3}')
rec_on_allocs=$(echo "$rec" | awk '/BenchmarkClusterLoadRecorderOn/ {print $7}')

jrnl=$(go test -run xxx -bench 'BenchmarkJournalAppendSyncEvery' -benchmem \
	-benchtime 200x ./internal/controlplane/)
jrnl_1_ns=$(echo "$jrnl" | awk '$1 ~ /^BenchmarkJournalAppendSyncEvery1(-[0-9]+)?$/ {print $3}')
jrnl_8_ns=$(echo "$jrnl" | awk '$1 ~ /^BenchmarkJournalAppendSyncEvery8(-[0-9]+)?$/ {print $3}')
jrnl_64_ns=$(echo "$jrnl" | awk '$1 ~ /^BenchmarkJournalAppendSyncEvery64(-[0-9]+)?$/ {print $3}')

raft=$(go test -run xxx -bench 'BenchmarkRaftQuorumAppend' -benchmem \
	-benchtime 200x ./internal/raft/)
raft_3_ns=$(echo "$raft" | awk '$1 ~ /^BenchmarkRaftQuorumAppend(-[0-9]+)?$/ {print $3}')
raft_3_allocs=$(echo "$raft" | awk '$1 ~ /^BenchmarkRaftQuorumAppend(-[0-9]+)?$/ {print $7}')
raft_5_ns=$(echo "$raft" | awk '$1 ~ /^BenchmarkRaftQuorumAppend5(-[0-9]+)?$/ {print $3}')
raft_5_allocs=$(echo "$raft" | awk '$1 ~ /^BenchmarkRaftQuorumAppend5(-[0-9]+)?$/ {print $7}')

# Churn replay: 2 simulated minutes of seeded datacenter load through the
# real control plane (sagas over a lossy transport, journal, reconciler,
# autoscaler). The stdout line reads
#   sagas committed    NNNN (RRRR.R per sim-minute, SS.SS per sim-second)
t0=$(now_s)
replay_out=$("$bin" -experiment replay -replay-minutes 2 -seed 1 2>/dev/null)
t1=$(now_s)
replay_s=$(elapsed "$t0" "$t1")
replay_committed=$(printf '%s\n' "$replay_out" | \
	awk '/sagas committed/ {print $3}')
replay_per_min=$(printf '%s\n' "$replay_out" | \
	awk '/sagas committed/ {gsub(/\(/, "", $4); print $4}')

# Real scheduler-visible core count. BENCH_PR4.json recorded 1 because
# getconf _NPROCESSORS_ONLN reports the container host's online-processor
# view on some runtimes; nproc respects the cpuset/affinity mask actually
# available to this process. Fall back through the chain otherwise.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

cat > "$out" <<EOF
{
  "snapshot": "quick-suite wall clock + kernel/placement/attribution micro-benchmarks + sharded rack scaling + churn-replay saga throughput + flight-recorder overhead + journal group-commit sweep + raft quorum-commit append",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_cores": $cores,
  "quick_suite_wall_seconds": {
    "sequential": $seq_s,
    "parallel_all_cores": $par_s
  },
  "sharded_scaling": {
    "scenario": "tfbench -experiment rack -full (32 hosts, 160 attachments, 1280 flows; seeded stdout byte-identical across shard counts)",
    "runs": [
$rack_rows
    ]
  },
  "kernel_schedule_run": {
    "ns_per_op": $kern_ns,
    "allocs_per_op": $kern_allocs
  },
  "kernel_run_before_windows": {
    "ns_per_op": $win_ns,
    "allocs_per_op": $win_allocs
  },
  "shard_barrier_ns_per_window": $barrier,
  "dcsim_place_fixed_ns_per_op": $place,
  "cluster_load_latency_attr": {
    "off": { "ns_per_op": $attr_off_ns, "allocs_per_op": $attr_off_allocs },
    "on": { "ns_per_op": $attr_on_ns, "allocs_per_op": $attr_on_allocs }
  },
  "saga_attach_detach_tracing": {
    "note": "one journaled attach+detach saga pair against 3 agents; off = tracing disabled (nil-guarded emission sites add zero allocations), on = default 16Ki event log on the monotonic clock",
    "off": { "ns_per_op": $saga_off_ns, "allocs_per_op": $saga_off_allocs },
    "on": { "ns_per_op": $saga_on_ns, "allocs_per_op": $saga_on_allocs }
  },
  "churn_replay": {
    "note": "tfbench -experiment replay -replay-minutes 2 -seed 1: seeded attach/detach churn with flap storms and pressure walks driven through the journaled saga engine over a lossy transport (faults + autoscaler on)",
    "sagas_committed": $replay_committed,
    "sagas_per_sim_minute": $replay_per_min,
    "wall_seconds": $replay_s
  },
  "flight_recorder": {
    "note": "full-datapath cacheline load with the flight recorder sampling at the default 5 us tick; off = recorder never enabled, which must stay allocation-identical to cluster_load_latency_attr.off (the disabled recorder adds no events and no allocations)",
    "off": { "ns_per_op": $attr_off_ns, "allocs_per_op": $attr_off_allocs },
    "on": { "ns_per_op": $rec_on_ns, "allocs_per_op": $rec_on_allocs }
  },
  "journal_append": {
    "note": "FileJournal.Append with fsync group commit (SetSyncEvery): batch sizes 1 (write-through, the default), 8, and 64; the batched rows amortize one fsync across the batch, a crash may lose at most the last N-1 records",
    "sync_every_1_ns_per_op": $jrnl_1_ns,
    "sync_every_8_ns_per_op": $jrnl_8_ns,
    "sync_every_64_ns_per_op": $jrnl_64_ns
  },
  "raft_append": {
    "note": "quorum-commit append through the embedded Raft leader: each op proposes one saga journal record and ticks the virtual cluster until a majority acks (the HA write path behind ReplicatedJournal.Append); compare against journal_append for the single-node fsync cost it replaces",
    "nodes_3": { "ns_per_op": $raft_3_ns, "allocs_per_op": $raft_3_allocs },
    "nodes_5": { "ns_per_op": $raft_5_ns, "allocs_per_op": $raft_5_allocs }
  }
}
EOF
echo "wrote $out (sequential ${seq_s}s, parallel ${par_s}s)"
