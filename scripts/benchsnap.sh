#!/bin/sh
# benchsnap.sh OUT.json — record a wall-clock/allocation snapshot:
#   * quick-scale tfbench full suite, sequential (-parallel 1) vs all
#     cores (-parallel 0)
#   * sim kernel schedule/run micro-benchmark (ns/op, allocs/op)
#   * dcsim placement micro-benchmark (ns/op)
# The parallel and sequential suites print byte-identical output (asserted
# by internal/bench tests); only wall-clock may differ.
set -eu

out=${1:-BENCH_PR1.json}
bin=$(mktemp -t tfbench.XXXXXX)
trap 'rm -f "$bin"' EXIT

go build -o "$bin" ./cmd/tfbench

now_s() { date +%s.%N 2>/dev/null || date +%s; }
elapsed() { awk "BEGIN{printf \"%.2f\", $2 - $1}"; }

t0=$(now_s)
"$bin" -parallel 1 >/dev/null
t1=$(now_s)
seq_s=$(elapsed "$t0" "$t1")

t0=$(now_s)
"$bin" -parallel 0 >/dev/null
t1=$(now_s)
par_s=$(elapsed "$t0" "$t1")

kern=$(go test -run xxx -bench BenchmarkKernelScheduleRun -benchmem \
	-benchtime 5x ./internal/sim/ | awk '/BenchmarkKernelScheduleRun/ {print $3, $7}')
kern_ns=$(echo "$kern" | awk '{print $1}')
kern_allocs=$(echo "$kern" | awk '{print $2}')

place=$(go test -run xxx -bench 'BenchmarkDcsimPlace/fixed' -benchtime 3x \
	./internal/dcsim/ | awk '/BenchmarkDcsimPlace\/fixed/ {print $3}')

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)

cat > "$out" <<EOF
{
  "snapshot": "PR1 parallel engine + allocation-lean kernel + indexed placement",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_cores": $cores,
  "quick_suite_wall_seconds": {
    "sequential": $seq_s,
    "parallel_all_cores": $par_s
  },
  "kernel_schedule_run": {
    "ns_per_op": $kern_ns,
    "allocs_per_op": $kern_allocs
  },
  "dcsim_place_fixed_ns_per_op": $place
}
EOF
echo "wrote $out (sequential ${seq_s}s, parallel ${par_s}s)"
