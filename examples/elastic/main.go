// elastic example: the paper's headline capability — run-time attachment
// and detachment of byte-addressable disaggregated memory to a running
// system. A host exhausts its local memory, grows into a neighbour's DRAM
// without stopping the (simulated) application, then shrinks back: pages
// are migrated off the disaggregated node and the memory is returned to
// the donor.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

func main() {
	cluster := core.NewCluster()
	cfg := core.DefaultHostConfig("app-host")
	cfg.DRAMPerSocket = 1 << 30 // a deliberately small host: 2 GiB total
	host, err := cluster.AddHost(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.AddHost(core.DefaultHostConfig("donor")); err != nil {
		log.Fatal(err)
	}

	free := func() int64 { return host.FreeLocalBytes() }
	fmt.Printf("app-host local memory: %d MiB free\n", free()>>20)

	// Fill most of local memory with a resident application.
	resident, err := host.Mem.Alloc(1800<<20, numa.Preferred(host.Mem, host.LocalNode(0), host.LocalNode(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application resident set: %d MiB; local free now %d MiB\n",
		resident.Size>>20, free()>>20)

	// A new 1 GiB allocation cannot fit locally...
	if _, err := host.Mem.Alloc(1<<30, numa.Local(host.LocalNode(0))); err == nil {
		log.Fatal("allocation unexpectedly fit")
	} else {
		fmt.Printf("1 GiB allocation fails locally: %v\n", err)
	}

	// ...so attach 1 GiB from the donor at runtime and retry on the new
	// CPU-less NUMA node.
	att, err := cluster.Attach(core.AttachSpec{
		ComputeHost: "app-host", DonorHost: "donor", Bytes: 1 << 30, Channels: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached %d MiB from donor as NUMA node %d (%d hotplugged sections)\n",
		att.Bytes>>20, att.Node, len(att.Sections))

	grown, err := host.Mem.Alloc(768<<20, numa.Local(att.Node))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew into disaggregated memory: %d MiB allocated remotely\n", grown.Size>>20)

	// Run some work against the grown region while it is remote.
	k := cluster.K
	k.Go("worker", func(p *sim.Proc) {
		th := host.NewThread(0)
		start := p.Now()
		for off := int64(0); off < 64<<20; off += 64 << 10 {
			th.Access(p, grown.Addr(off), 64, true)
		}
		fmt.Printf("touched 64 MiB of remote pages in %v (simulated)\n", p.Now()-start)
	})
	k.Run()

	// Shrink: free the grown region, drain any remaining pages, detach.
	host.Mem.Free(grown)
	// Make room locally so the (empty) node drains trivially.
	host.Mem.Free(resident)
	if err := cluster.Detach(att.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detached; donor capacity restored, app-host back to %d MiB free local\n", free()>>20)

	// The same host can re-attach immediately (fresh sections, fresh flow).
	att2, err := cluster.Attach(core.AttachSpec{
		ComputeHost: "app-host", DonorHost: "donor", Bytes: 256 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-attached %d MiB as node %d — elastic cycle complete\n", att2.Bytes>>20, att2.Node)
}
