// dcsim example: the paper's motivation study (Section II, Figure 1) — how
// much resource fragmentation a disaggregated data-centre eliminates
// compared to fixed servers, on a synthetic Google-ClusterData-shaped trace.
//
//	go run ./examples/dcsim
package main

import (
	"fmt"

	"thymesisflow/internal/dcsim"
	"thymesisflow/internal/dctrace"
)

func main() {
	cfg := dctrace.DefaultConfig()
	cfg.Tasks = 20000
	servers := 1200
	cfg.ArrivalRate = cfg.ArrivalRate * float64(servers) / dcsim.DefaultServers

	fmt.Printf("replaying %d tasks against %d servers (fixed) and %d+%d modules (disaggregated)\n",
		cfg.Tasks, servers, servers, servers)
	study := dcsim.RunStudy(cfg, servers, dcsim.DefaultLinksPerModule)

	fmt.Printf("\nmemory/CPU demand ratios span %.1f orders of magnitude\n\n", study.RatioOrders)
	fmt.Printf("%-15s %12s %12s %12s %12s\n", "model", "frag CPU %", "frag MEM %", "off CPU %", "off MEM %")
	fmt.Printf("%-15s %12.2f %12.2f %12.2f %12.2f\n", "fixed",
		100*study.Fixed.FragmentationCPU, 100*study.Fixed.FragmentationMem,
		100*study.Fixed.OffCPU, 100*study.Fixed.OffMem)
	fmt.Printf("%-15s %12.2f %12.2f %12.2f %12.2f\n", "disaggregated",
		100*study.Disagg.FragmentationCPU, 100*study.Disagg.FragmentationMem,
		100*study.Disagg.OffCPU, 100*study.Disagg.OffMem)
	fmt.Println("\npaper (Fig. 1): fixed 16 / 29.5 / ~1 / ~1 ; disaggregated 3.86 / 9.2 / 8 / 27")
	fmt.Printf("\nplaced %d tasks (fixed) / %d (disaggregated)\n", study.Fixed.Placed, study.Disagg.Placed)
}
