// analytics example: run the Elasticsearch-like engine on the Rally
// "nested" track across memory configurations (the Figure 9 experiment),
// showing where scale-out beats disaggregation and where they tie.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"thymesisflow/internal/core"
	"thymesisflow/internal/workloads/search"
)

func main() {
	fmt.Println("Elasticsearch-like engine, Rally \"nested\" track (queries/sec)")
	for _, ch := range search.Challenges() {
		for _, shards := range []int{5, 32} {
			fmt.Printf("%-8v shards=%-3d:", ch, shards)
			for _, cfg := range core.AllConfigs() {
				rc := search.DefaultRunConfig(ch, shards)
				rc.Clients = 32
				rc.OpsPerClient = 2
				rc.Corpus.Docs = 200_000
				if ch == search.MA {
					rc.OpsPerClient = 10
				}
				res, err := search.Run(cfg, rc)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %s=%.0f", cfg, res.Throughput)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nexpected shape (paper Fig. 9): scale-out wins RTQ and the nested")
	fmt.Println("challenges; all configurations tie on MA; shard scaling degrades the")
	fmt.Println("synchronization-heavy challenges.")
}
