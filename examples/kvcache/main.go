// kvcache example: run the Memcached-like cache under the Facebook ETC
// workload on every memory configuration of the paper and print the GET
// latency distributions (the Figure 8 experiment).
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"thymesisflow/internal/core"
	"thymesisflow/internal/workloads/kvcache"
)

func main() {
	rc := kvcache.DefaultRunConfig()
	rc.Threads = 32
	rc.RequestsPerThread = 1500
	rc.CacheBytes = 96 << 20
	rc.Keys = 3_000_000

	fmt.Println("Memcached / ETC workload across memory configurations")
	fmt.Printf("%-22s %8s %8s %8s %8s %8s %9s\n",
		"config", "avg(us)", "p50", "p90", "p99", "hit%", "ops/s")
	for _, cfg := range core.AllConfigs() {
		res, err := kvcache.Run(cfg, rc)
		if err != nil {
			log.Fatal(err)
		}
		h := res.GetLatency
		fmt.Printf("%-22s %8.0f %8.0f %8.0f %8.0f %7.1f%% %9.0f\n",
			cfg, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99),
			100*res.HitRatio, res.Throughput)
	}

	// Print the CDF of the single-disaggregated configuration, the curve
	// Figure 8 plots.
	res, err := kvcache.Run(core.ConfigSingleDisaggregated, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsingle-disaggregated GET latency CDF (sampled):")
	cdf := res.GetLatency.CDF()
	step := len(cdf) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(cdf); i += step {
		fmt.Printf("  %6.0f us  %6.2f%%\n", cdf[i].Value, 100*cdf[i].Fraction)
	}
}
