// Quickstart: bring up two AC922-like hosts, attach 1 GiB of the
// neighbour's memory over ThymesisFlow, verify data integrity through the
// full transaction datapath, and compare local vs disaggregated STREAM
// bandwidth.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/stream"
)

func main() {
	// 1. Build a two-node cluster.
	cluster := core.NewCluster()
	server, err := cluster.AddHost(core.DefaultHostConfig("server0"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.AddHost(core.DefaultHostConfig("server1")); err != nil {
		log.Fatal(err)
	}

	// 2. Attach 1 GiB of server1's memory to server0 over one 100 Gb/s
	// channel. This performs the full software-defined flow: donor-side
	// stealing (C1/PASID), RMMU section mapping, routing-layer flow setup,
	// LLC/phy bring-up, Linux-style hotplug, and CPU-less NUMA node
	// creation.
	att, err := cluster.Attach(core.AttachSpec{
		ComputeHost: "server0",
		DonorHost:   "server1",
		Bytes:       1 << 30,
		Channels:    1,
		Backing:     true, // keep real bytes at the donor for verification
	})
	if err != nil {
		log.Fatal(err)
	}
	node := server.Mem.Node(att.Node)
	fmt.Printf("attached %d MiB of %s's memory as NUMA node %d (CPU-less=%v, distance=%d)\n",
		att.Bytes>>20, att.DonorHost, att.Node, node.CPULess, node.Distance)

	// 3. Store and load through the real transaction datapath (RMMU ->
	// routing -> LLC framing -> phy -> donor C1 -> back).
	payload := bytes.Repeat([]byte{0x7F}, 128)
	cluster.K.Go("verify", func(p *sim.Proc) {
		start := p.Now()
		if err := cluster.Store(p, att, 4096, payload); err != nil {
			log.Fatal(err)
		}
		got, err := cluster.Load(p, att, 4096, 128)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("data corrupted through the datapath")
		}
		fmt.Printf("store+load round trip through the datapath: %v (data verified)\n", p.Now()-start)
	})
	cluster.K.Run()

	// 4. STREAM on local vs disaggregated memory.
	cfg := stream.Config{Elements: 20_000_000, Threads: 8, Iterations: 1, ChunkBytes: 4 << 20}
	localRes, err := stream.Run(server, numa.Local(server.LocalNode(0)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	remoteRes, err := stream.Run(server, numa.Local(att.Node), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSTREAM, 8 threads (GiB/s):")
	fmt.Printf("  %-8s %10s %14s\n", "kernel", "local", "disaggregated")
	for i := range localRes {
		fmt.Printf("  %-8v %10.2f %14.2f\n", localRes[i].Kernel, localRes[i].GiBps, remoteRes[i].GiBps)
	}
}
