// controlplane example: the full software-defined flow end to end — build a
// rack with a topology model and node agents, start the REST API on a local
// port, then act as an API client: attach memory with channel bonding,
// inspect the state, run a workload on the attached memory, and detach.
//
//	go run ./examples/controlplane
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/controlplane"
	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/workloads/stream"
)

const (
	cpToken    = "internal-trust"
	adminToken = "admin-secret"
)

func main() {
	// 1. Simulated rack + topology model + agents.
	cluster := core.NewCluster()
	model := controlplane.NewModel()
	names := []string{"node0", "node1", "node2"}
	for _, n := range names {
		if _, err := cluster.AddHost(core.DefaultHostConfig(n)); err != nil {
			log.Fatal(err)
		}
		if err := model.AddHost(n, 2); err != nil {
			log.Fatal(err)
		}
	}
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ct := model.Transceivers(a, controlplane.LabelComputeEP)
			mt := model.Transceivers(b, controlplane.LabelMemoryEP)
			for i := 0; i < len(ct) && i < len(mt); i++ {
				if err := model.Cable(ct[i], mt[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	svc := controlplane.NewService(model, controlplane.ClusterExecutor{Cluster: cluster}, cpToken)
	for _, n := range names {
		svc.RegisterAgent(agent.New(n, cpToken))
	}

	// 2. Serve the REST API on an ephemeral port.
	api := controlplane.NewAPI(svc, controlplane.AuthConfig{AdminTokens: []string{adminToken}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, api) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Printf("control plane serving on %s\n", base)

	// 3. Attach 512 MiB from node1 to node0 with channel bonding, via REST.
	body, _ := json.Marshal(map[string]any{
		"compute_host": "node0", "donor_host": "node1",
		"bytes": 512 << 20, "channels": 2,
	})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/attachments", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+adminToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var rec controlplane.AttachmentRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("attached: id=%s numa-node=%d channels=%d path-lengths=%v\n",
		rec.ID, rec.NUMANode, rec.Channels, rec.PathLen)

	// 4. Use the attached memory: bonded STREAM on node0.
	node0, _ := cluster.Host("node0")
	att, _ := cluster.Attachment(rec.ID)
	res, err := stream.Run(node0, numa.Local(att.Node),
		stream.Config{Elements: 20_000_000, Threads: 8, Iterations: 1, ChunkBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bonded STREAM copy on the attached memory: %.2f GiB/s\n", res[0].GiBps)

	// 5. Detach via REST and show the fabric is free again.
	dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/attachments/"+rec.ID, nil)
	dreq.Header.Set("Authorization", "Bearer "+adminToken)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		log.Fatal(err)
	}
	dresp.Body.Close()
	fmt.Printf("detached; free compute transceivers on node0: %d/2\n",
		model.FreeTransceivers("node0", controlplane.LabelComputeEP))
}
